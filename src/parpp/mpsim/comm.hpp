// Communicator abstraction over the thread-rank simulator.
//
// Substitutes for MPI (see DESIGN.md): each rank is a std::thread; the
// collectives below exchange data through shared staging pointers guarded by
// a group barrier, and additionally charge the BSP alpha-beta model costs
// that a fully-connected network implementation would incur (Sec. II-E).
//
// Fault tolerance: the barrier is a phased condition-variable barrier that
// can be *poisoned* (by a timeout, an injected fault, or a rank-body
// exception) instead of std::barrier, which would deadlock the survivors.
// Poisoning cascades over the whole communicator tree (world + every split
// child) so no rank can hang waiting on a group whose sibling already
// failed; every rank then observes CommFailure at its next barrier.
//
// Memory-safety invariant under poison: a collective's cross-rank copy
// window only opens once ALL ranks passed the same publication barrier, and
// a poisoned barrier still rendezvouses (waits for every rank to arrive, up
// to a grace period) before throwing. A rank can therefore only unwind —
// and free its published buffers — after every peer finished reading them.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "parpp/mpsim/cost.hpp"
#include "parpp/mpsim/fault.hpp"
#include "parpp/mpsim/verify.hpp"
#include "parpp/util/common.hpp"
#include "parpp/util/profile.hpp"

namespace parpp::mpsim {

namespace detail {

struct Group;

/// Shared by every Group of one communicator tree (the world group and all
/// split descendants); lets a failure anywhere poison everything at once.
struct GroupRegistry {
  std::mutex mutex;
  std::vector<std::weak_ptr<Group>> groups;

  void add(const std::shared_ptr<Group>& g);
  void poison_all(const std::string& reason);
};

/// World-scope consensus state for elastic shrink (ULFM-style continuation).
/// Lives *outside* the poisonable Group tree: once a failure poisons every
/// group, the survivors can no longer use barriers to agree on anything, so
/// they rendezvous here instead. Sticky death flags are indexed by original
/// world rank and survive across shrinks; each consensus round (epoch)
/// collects every rank not marked dead, declares unresponsive stragglers
/// dead after a grace period, and publishes one rebuilt Group (fresh
/// registry, fresh verifier sequence numbers) that all survivors adopt.
struct ShrinkBoard {
  explicit ShrinkBoard(int world_size);

  /// Mark a world rank dead (sticky). Safe from any thread; wakes shrink
  /// waiters so consensus can complete without waiting out the grace period.
  void mark_dead(int world_rank, const std::string& why);
  [[nodiscard]] bool is_dead(int world_rank);

  std::mutex mutex;
  std::condition_variable cv;
  std::vector<char> dead;       ///< sticky, world-rank indexed
  std::vector<char> joined;     ///< current epoch's arrivals; reset per epoch
  std::uint64_t epoch = 0;      ///< completed consensus rounds
  /// Result of the last round. Weak on purpose: the rebuilt Group holds the
  /// board through `Group::board`, so a strong handle here would form a
  /// reference cycle that outlives the run. The creating thread keeps a
  /// strong reference through the adoption barrier (which every survivor
  /// must reach after locking this handle), so adoption never observes an
  /// expired pointer unless the creator itself aborted mid-recovery.
  std::weak_ptr<Group> last_group;
  std::vector<int> last_survivors;     ///< world ranks, ascending
  std::string last_death_reason;       ///< why the most recent rank died
};

/// Shared state for one communicator group. All member ranks hold the same
/// Group through shared_ptr; staging slots are indexed by group rank.
struct Group {
  explicit Group(int size);
  ~Group();

  int size;
  /// Longest a rank waits at a barrier before declaring the group dead.
  double timeout_seconds = 60.0;
  /// Bounded retry-with-backoff on the timed barrier: after the first
  /// timeout expires, a waiter extends its deadline `barrier_retries` times
  /// (each extension timeout_seconds * retry_backoff) before declaring the
  /// group dead. Transient delays in (T, T * (1 + retries * backoff)] are
  /// absorbed without poisoning anything. The kTimeout fault's stall bound
  /// (3 T + 0.1, see fault.cpp) exceeds the full budget, so a genuinely
  /// unresponsive rank is still always declared dead.
  int barrier_retries = 1;
  double retry_backoff = 1.5;
  std::shared_ptr<GroupRegistry> registry;
  /// Shrink consensus board shared by the whole communicator tree across
  /// shrinks; null when the runtime did not enable elastic recovery.
  std::shared_ptr<ShrinkBoard> board;
  /// Group rank -> original world rank (identity for the initial world
  /// group, the survivor list for shrunken ones; empty for split children,
  /// which never shrink directly).
  std::vector<int> world_ranks;

  std::vector<const double*> src;  ///< publish slots (one per rank)
  std::vector<double*> dst;        ///< destination slots where needed

  // Collective-matching verifier state (see verify.hpp). When `verify` is
  // set, every rendezvous publishes a per-rank fingerprint alongside its
  // staging pointer and cross-checks the group before any payload copy
  // window opens. Slots are rank-indexed; the publication barrier is the
  // only synchronization they need.
  bool verify = false;
  std::vector<Fingerprint> fps;
  std::vector<std::uint64_t> seq_counters;

  // Phased barrier with poison support.
  std::mutex mutex;
  std::condition_variable cv;
  int arrived = 0;
  std::uint64_t phase = 0;
  bool failed = false;      ///< poison flag; barriers throw once set
  bool dead = false;        ///< poisoned rendezvous done: throw immediately
  std::string fail_reason;

  /// Synchronize the group; throws CommFailure when the group is poisoned
  /// (after rendezvousing with the other arrivals — see file comment) or
  /// when the wait exceeds timeout_seconds.
  void barrier_wait();

  /// Mark this group failed and wake all waiters. Does not cascade; use
  /// poison_tree for that.
  void poison(const std::string& reason);

  /// Poison every group in this communicator tree.
  void poison_tree(const std::string& reason);

  [[nodiscard]] bool poisoned();

  // split() coordination: rank 0 per color creates the child group.
  std::mutex split_mutex;
  std::map<int, std::shared_ptr<Group>> split_children;
  std::vector<std::pair<int, int>> split_keys;  ///< (color, key) per rank
  std::uint64_t split_generation = 0;
};

/// Creates a Group wired into `registry` (a fresh registry when null).
[[nodiscard]] std::shared_ptr<Group> make_group(
    int size, std::shared_ptr<GroupRegistry> registry = nullptr);

}  // namespace detail

/// Handle a rank uses to talk to its group. Cheap to copy.
class Comm {
 public:
  Comm() = default;
  Comm(std::shared_ptr<detail::Group> group, int rank, CostCounter* cost,
       Profile* profile, FaultyComm* fault = nullptr);

  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] int size() const { return group_ ? group_->size : 1; }

  // Every collective takes a mandatory call-site tag (PARPP_COMM_TAG) so
  // the matching verifier can attribute a mismatched rendezvous to exact
  // source lines on every rank. The compiler enforces that a tag exists;
  // tools/parpp_lint enforces that it is the macro, not a bare {}.

  void barrier(CommTag tag) const;

  /// All ranks contribute `count` words at `data`; on return every rank's
  /// buffer holds the element-wise sum. In place.
  void allreduce_sum(double* data, index_t count, CommTag tag) const;

  /// Gathers `local_count` words from each rank into `out` (size
  /// local_count * size) in rank order. `in` may alias `out + rank*count`.
  void allgather(const double* in, index_t local_count, double* out,
                 CommTag tag) const;

  /// Element-wise sums the full `total_count`-word buffers across ranks and
  /// leaves chunk `rank` (of size total_count / size, which must divide) in
  /// `out`.
  void reduce_scatter_sum(const double* in, index_t total_count, double* out,
                          CommTag tag) const;

  /// Broadcast `count` words from `root` to all ranks. In place.
  void bcast(double* data, index_t count, int root, CommTag tag) const;

  /// Personalized all-to-all: rank r sends chunk q of `in` to rank q, which
  /// stores it at chunk r of `out`. Chunk size = count_per_pair words.
  void alltoall(const double* in, index_t count_per_pair, double* out,
                CommTag tag) const;

  /// Collective split: every member must call with some (color, key); ranks
  /// sharing a color form a child communicator ordered by (key, old rank).
  [[nodiscard]] Comm split(int color, int key, CommTag tag) const;

  /// Elastic shrink (ULFM-style): after observing CommFailure on this
  /// (world) communicator, every surviving rank calls shrink(). Survivors
  /// agree on the live-rank set through the shrink board — a poison-tolerant
  /// consensus that waits for every rank not already marked dead, declaring
  /// unresponsive stragglers dead after a grace period sized to outlast the
  /// barrier retry budget and the kTimeout stall bound — then the first rank
  /// past the consensus rebuilds a smaller Group under a *fresh* registry
  /// (the old tree stays poisoned) with the verifier re-registered and
  /// program-order sequence numbers reset. Returns the new communicator; the
  /// first collective on it is a verified barrier carrying `tag`, proving
  /// the rebuilt group round-trips before any payload moves. Throws
  /// CommFailure if this rank was itself declared dead, or if no shrink
  /// board exists (runtime without elastic support).
  [[nodiscard]] Comm shrink(CommTag tag) const;

  /// True when this communicator tree carries a shrink board.
  [[nodiscard]] bool shrink_supported() const {
    return group_ && group_->board != nullptr;
  }

  /// This rank's original world rank (identity before any shrink).
  [[nodiscard]] int world_rank() const;

  /// Group rank -> original world rank for every member (ascending after a
  /// shrink). Empty for split children.
  [[nodiscard]] const std::vector<int>& group_world_ranks() const;

  /// True when the shrink board has declared this rank dead (it must abort
  /// rather than rejoin).
  [[nodiscard]] bool marked_dead() const;

  /// Register this rank's own death on the shrink board (local failure
  /// outside a collective) so a concurrent shrink excludes it immediately.
  void mark_self_dead(const std::string& why) const;

  /// Poison this communicator's whole tree: every rank's next barrier (in
  /// any group) throws CommFailure with `reason`. Used by the runtime when
  /// a rank body throws outside a collective, so peers fail fast instead of
  /// deadlocking.
  void poison(const std::string& reason) const;

  [[nodiscard]] CostCounter* cost() const { return cost_; }
  [[nodiscard]] Profile* profile() const { return profile_; }
  [[nodiscard]] FaultyComm* fault() const { return fault_; }

 private:
  /// Raw phased-barrier wait for the internal synchronization points of a
  /// collective already past its verified entry (these are protocol steps,
  /// not program-order rendezvous, so they are never fingerprinted).
  void sync() const;

  /// Verified rendezvous entry: publishes this rank's fingerprint (when the
  /// group verifies), runs the publication barrier, then cross-checks every
  /// rank's claim — throwing CommFailure with per-rank call-site
  /// diagnostics on mismatch, before any payload copy window opens.
  void enter_collective(VerifyOp op, index_t count, int root,
                        CommTag tag) const;

  std::shared_ptr<detail::Group> group_;
  int rank_ = 0;
  CostCounter* cost_ = nullptr;
  Profile* profile_ = nullptr;
  FaultyComm* fault_ = nullptr;
};

}  // namespace parpp::mpsim
