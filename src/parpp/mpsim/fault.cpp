#include "parpp/mpsim/fault.hpp"

#include <chrono>
#include <cmath>
#include <limits>
#include <string>
#include <thread>

#include "parpp/mpsim/comm.hpp"

namespace parpp::mpsim {

const char* fault_kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::kNone: return "none";
    case FaultKind::kDelay: return "delay";
    case FaultKind::kTimeout: return "timeout";
    case FaultKind::kRankAbort: return "rank-abort";
    case FaultKind::kCorruption: return "corruption";
  }
  return "?";
}

bool FaultyComm::matches(Collective kind, index_t words) const {
  if (plan_.filter_collective && kind != plan_.collective) return false;
  // Corruption targets data payloads only; scalar control collectives
  // (stop flags, health verdicts) stay intact so the rank-replicated
  // control flow cannot diverge (see FaultPlan::min_corrupt_words).
  if (plan_.kind == FaultKind::kCorruption &&
      words < plan_.min_corrupt_words)
    return false;
  return true;
}

void FaultyComm::before_collective(Collective kind, detail::Group& group,
                                   double* inout, index_t words) {
  if (!plan_.active() || fired_ || world_rank_ != plan_.rank) return;
  if (!matches(kind, words)) return;
  if (++matched_ != plan_.nth) return;
  fired_ = true;

  switch (plan_.kind) {
    case FaultKind::kDelay:
      std::this_thread::sleep_for(
          std::chrono::duration<double>(plan_.delay_seconds));
      delay_notices_.fetch_add(1);
      return;

    case FaultKind::kTimeout: {
      // Stall past the barrier timeout without entering the collective.
      // Peers time out at their publication barrier and poison the tree;
      // this rank then observes the failure at its own first barrier below.
      // Bounded so a generous timeout cannot hang the simulation forever.
      const double limit = 3.0 * group.timeout_seconds + 0.1;
      const auto t0 = std::chrono::steady_clock::now();
      while (!group.poisoned()) {
        const std::chrono::duration<double> elapsed =
            std::chrono::steady_clock::now() - t0;
        if (elapsed.count() >= limit) break;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
      return;
    }

    case FaultKind::kRankAbort: {
      const std::string reason =
          "rank " + std::to_string(world_rank_) +
          " aborted (injected fault at matching collective #" +
          std::to_string(plan_.nth) + ")";
      group.poison_tree(reason);
      throw CommFailure(reason);
    }

    case FaultKind::kCorruption:
      if (inout != nullptr) {
        // In-place collective: corrupt this rank's *contribution*, so every
        // rank receives the identical (NaN-poisoned) reduction and the
        // replicated state stays replicated.
        inout[static_cast<index_t>(plan_.seed % static_cast<std::uint64_t>(
                                       words))] =
            std::numeric_limits<double>::quiet_NaN();
        corruption_notices_.fetch_add(1);
      } else {
        // Gather-shaped collective: corrupt this rank's own output after
        // the exchange; the NaN reaches every rank through the next
        // reduction and the per-sweep health check catches it.
        corrupt_output_pending_ = true;
      }
      return;

    case FaultKind::kNone:
      return;
  }
}

void FaultyComm::after_collective(Collective /*kind*/, double* out,
                                  index_t words) {
  if (!corrupt_output_pending_ || words <= 0) return;
  corrupt_output_pending_ = false;
  out[static_cast<index_t>(plan_.seed % static_cast<std::uint64_t>(words))] =
      std::numeric_limits<double>::quiet_NaN();
  corruption_notices_.fetch_add(1);
}

}  // namespace parpp::mpsim
