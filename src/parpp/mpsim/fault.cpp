#include "parpp/mpsim/fault.hpp"

#include <chrono>
#include <cmath>
#include <limits>
#include <string>
#include <thread>

#include "parpp/mpsim/comm.hpp"

namespace parpp::mpsim {

const char* fault_kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::kNone: return "none";
    case FaultKind::kDelay: return "delay";
    case FaultKind::kTimeout: return "timeout";
    case FaultKind::kRankAbort: return "rank-abort";
    case FaultKind::kCorruption: return "corruption";
  }
  return "?";
}

std::vector<FaultEvent> FaultPlan::events() const {
  std::vector<FaultEvent> out;
  if (kind != FaultKind::kNone) {
    FaultEvent head;
    head.kind = kind;
    head.rank = rank;
    head.nth = nth;
    head.filter_collective = filter_collective;
    head.collective = collective;
    head.delay_seconds = delay_seconds;
    head.repeat = repeat;
    head.period = period;
    out.push_back(head);
  }
  for (const auto& e : then)
    if (e.kind != FaultKind::kNone) out.push_back(e);
  return out;
}

FaultyComm::FaultyComm(const FaultPlan& plan, int world_rank)
    : min_corrupt_words_(plan.min_corrupt_words),
      seed_(plan.seed),
      world_rank_(world_rank) {
  for (const auto& ev : plan.events()) events_.push_back({ev, 0, 0});
}

bool FaultyComm::matches(const FaultEvent& ev, Collective kind,
                         index_t words) const {
  if (ev.filter_collective && kind != ev.collective) return false;
  // Corruption targets data payloads only; scalar control collectives
  // (stop flags, health verdicts) stay intact so the rank-replicated
  // control flow cannot diverge (see FaultPlan::min_corrupt_words).
  if (ev.kind == FaultKind::kCorruption && words < min_corrupt_words_)
    return false;
  return true;
}

void FaultyComm::before_collective(Collective kind, detail::Group& group,
                                   double* inout, index_t words) {
  for (auto& st : events_) {
    if (world_rank_ != st.ev.rank) continue;
    if (!matches(st.ev, kind, words)) continue;
    ++st.matched;
    if (st.fired >= st.ev.repeat) continue;
    const int target = st.ev.nth + st.fired * st.ev.period;
    if (st.matched != target) continue;
    ++st.fired;
    fire(st, group, inout, words);  // kRankAbort throws
  }
}

void FaultyComm::fire(const EventState& st, detail::Group& group,
                      double* inout, index_t words) {
  switch (st.ev.kind) {
    case FaultKind::kDelay:
      std::this_thread::sleep_for(
          std::chrono::duration<double>(st.ev.delay_seconds));
      delay_notices_.fetch_add(1);
      return;

    case FaultKind::kTimeout: {
      // Stall past the barrier timeout without entering the collective.
      // Peers time out at their publication barrier and poison the tree;
      // this rank then observes the failure at its own first barrier below.
      // Bounded so a generous timeout cannot hang the simulation forever.
      // The bound covers the peers' full retry-with-backoff budget (see
      // Group::barrier_wait) so the stall always outlasts their patience.
      const double limit = 3.0 * group.timeout_seconds + 0.1;
      const auto t0 = std::chrono::steady_clock::now();
      while (!group.poisoned()) {
        const std::chrono::duration<double> elapsed =
            std::chrono::steady_clock::now() - t0;
        if (elapsed.count() >= limit) break;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
      return;
    }

    case FaultKind::kRankAbort: {
      const std::string reason =
          "rank " + std::to_string(world_rank_) +
          " aborted (injected fault at matching collective #" +
          std::to_string(st.matched) + ")";
      // Register the death on the shrink board (when the tree has one) so
      // an elastic shrink consensus excludes this rank immediately instead
      // of waiting out the straggler grace period.
      if (group.board) group.board->mark_dead(world_rank_, reason);
      group.poison_tree(reason);
      throw CommFailure(reason);
    }

    case FaultKind::kCorruption:
      if (inout != nullptr) {
        // In-place collective: corrupt this rank's *contribution*, so every
        // rank receives the identical (NaN-poisoned) reduction and the
        // replicated state stays replicated.
        inout[static_cast<index_t>(seed_ %
                                   static_cast<std::uint64_t>(words))] =
            std::numeric_limits<double>::quiet_NaN();
        corruption_notices_.fetch_add(1);
      } else {
        // Gather-shaped collective: corrupt this rank's own output after
        // the exchange; the NaN reaches every rank through the next
        // reduction and the per-sweep health check catches it.
        corrupt_output_pending_ = true;
      }
      return;

    case FaultKind::kNone:
      return;
  }
}

void FaultyComm::after_collective(Collective /*kind*/, double* out,
                                  index_t words) {
  if (!corrupt_output_pending_ || words <= 0) return;
  corrupt_output_pending_ = false;
  out[static_cast<index_t>(seed_ % static_cast<std::uint64_t>(words))] =
      std::numeric_limits<double>::quiet_NaN();
  corruption_notices_.fetch_add(1);
}

}  // namespace parpp::mpsim
