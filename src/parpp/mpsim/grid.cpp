#include "parpp/mpsim/grid.hpp"

#include <algorithm>

namespace parpp::mpsim {

ProcessorGrid::ProcessorGrid(Comm world, std::vector<int> dims)
    : world_(std::move(world)), dims_(std::move(dims)) {
  int total = 1;
  for (int d : dims_) {
    PARPP_CHECK(d >= 1, "grid dims must be positive");
    total *= d;
  }
  PARPP_CHECK(total == world_.size(), "grid volume ", total,
              " != communicator size ", world_.size());
  coords_ = coords_of(world_.rank());

  slice_comms_.reserve(dims_.size());
  for (int mode = 0; mode < order(); ++mode) {
    // Color = my coordinate on `mode`; key = flattened remaining coords so
    // in-group ranks are ordered consistently across the grid.
    int key = 0;
    for (int m = 0; m < order(); ++m) {
      if (m == mode) continue;
      key = key * dim(m) + coord(m);
    }
    slice_comms_.push_back(
        world_.split(coord(mode), key, PARPP_COMM_TAG("grid-slice-split")));
  }
}

std::vector<int> ProcessorGrid::coords_of(int rank) const {
  std::vector<int> c(dims_.size());
  for (int m = order() - 1; m >= 0; --m) {
    c[static_cast<std::size_t>(m)] = rank % dim(m);
    rank /= dim(m);
  }
  return c;
}

int ProcessorGrid::rank_of(const std::vector<int>& coords) const {
  PARPP_CHECK(static_cast<int>(coords.size()) == order(),
              "rank_of: coord order mismatch");
  int r = 0;
  for (int m = 0; m < order(); ++m) {
    PARPP_ASSERT(coords[static_cast<std::size_t>(m)] >= 0 &&
                     coords[static_cast<std::size_t>(m)] < dim(m),
                 "rank_of: coordinate out of range");
    r = r * dim(m) + coords[static_cast<std::size_t>(m)];
  }
  return r;
}

std::vector<int> ProcessorGrid::balanced_dims(int nprocs, int order) {
  PARPP_CHECK(nprocs >= 1 && order >= 1, "balanced_dims: bad arguments");
  std::vector<int> dims(static_cast<std::size_t>(order), 1);
  // Peel prime factors largest-first onto the currently smallest dim.
  std::vector<int> primes;
  int n = nprocs;
  for (int f = 2; f * f <= n; ++f)
    while (n % f == 0) {
      primes.push_back(f);
      n /= f;
    }
  if (n > 1) primes.push_back(n);
  std::sort(primes.rbegin(), primes.rend());
  for (int p : primes) {
    auto it = std::min_element(dims.begin(), dims.end());
    *it *= p;
  }
  std::sort(dims.rbegin(), dims.rend());
  return dims;
}

}  // namespace parpp::mpsim
