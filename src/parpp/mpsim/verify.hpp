// Collective-matching verifier for mpsim::Comm.
//
// Every rendezvous a rank enters (the five payload collectives, plus
// barrier and split) is fingerprinted: operation kind, payload word count,
// bcast root, a program-order sequence number, and the call-site tag the
// caller passed via PARPP_COMM_TAG. The fingerprints are published through
// the group's existing publication barrier — zero extra synchronization —
// and cross-checked by every rank before any payload copy window opens.
// A rank calling allreduce_sum(5) while a peer calls bcast(5), or the same
// op with a different count, therefore aborts deterministically with
// per-rank call-site diagnostics instead of deadlocking, reading out of
// bounds, or silently corrupting payloads.
//
// This is the contract a future MPI_Comm-backed implementation must
// satisfy, expressed as an executable check: if the simulator's verifier
// never fires, the same program order is safe to hand to real MPI.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "parpp/util/common.hpp"

namespace parpp::mpsim {

/// Call-site tag carried by every collective call. Construct with
/// PARPP_COMM_TAG so mismatch reports name the exact source line. The
/// pointers reference string literals / static storage; tags are trivially
/// copyable and never own memory.
struct CommTag {
  const char* name = nullptr;  ///< semantic label, e.g. "gram-allreduce"
  const char* file = nullptr;
  int line = 0;
};

/// Tags a Comm collective call-site for the matching verifier. House rule
/// (enforced by tools/parpp_lint): every collective call in src/parpp uses
/// this macro, so cross-rank mismatch reports always carry file:line.
#define PARPP_COMM_TAG(name) \
  ::parpp::mpsim::CommTag { (name), __FILE__, __LINE__ }

/// Everything that rendezvouses on a group barrier, a superset of the
/// cost-model Collective enum (barrier and split rendezvous too and can be
/// mismatched just as fatally).
enum class VerifyOp : int {
  kAllReduce = 0,
  kAllGather,
  kReduceScatter,
  kBcast,
  kAllToAll,
  kBarrier,
  kSplit,
};

[[nodiscard]] const char* verify_op_name(VerifyOp op);

/// One rank's claim about the rendezvous it is entering.
struct Fingerprint {
  VerifyOp op = VerifyOp::kBarrier;
  /// Payload words. 0 where per-rank values legitimately differ (barrier,
  /// split — split colors/keys are rank-local by design).
  index_t count = 0;
  /// Root rank for rooted collectives (bcast); -1 elsewhere. Disagreeing
  /// about the root corrupts the staging-slot protocol, so it is checked.
  int root = -1;
  /// Program-order rendezvous number on this group (per rank). Catches a
  /// rank that skipped or repeated a collective even when kinds align.
  std::uint64_t seq = 0;
  CommTag tag;
};

/// True when the two claims describe the same collective: op, count, root
/// and sequence number equal, and the call-site tag *names* agree (file and
/// line are diagnostic only — a tagged helper is one call-site no matter
/// who inlined it). SPMD control flow is replicated, so ranks arriving at
/// the same rendezvous from differently-named sites is a matching bug even
/// when the shapes coincide.
[[nodiscard]] bool fingerprints_match(const Fingerprint& a,
                                      const Fingerprint& b);

/// Renders one rank's claim, e.g.
///   allreduce_sum(count=25) 'gram' at par/par_cp_als.cpp:101 [seq 12]
[[nodiscard]] std::string describe_fingerprint(const Fingerprint& fp);

/// Deterministic per-rank diagnosis of a mismatched rendezvous: identical
/// claims are grouped ("rank(s) 0,2,3: ...") in first-rank order, so every
/// rank of the group computes — and reports — the byte-identical string.
[[nodiscard]] std::string describe_mismatch(
    const std::vector<Fingerprint>& fps);

}  // namespace parpp::mpsim
