#include "parpp/mpsim/comm.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>

namespace parpp::mpsim {

namespace detail {

namespace {

std::chrono::steady_clock::duration to_duration(double seconds) {
  return std::chrono::duration_cast<std::chrono::steady_clock::duration>(
      std::chrono::duration<double>(seconds));
}

}  // namespace

ShrinkBoard::ShrinkBoard(int world_size)
    : dead(static_cast<std::size_t>(world_size), 0),
      joined(static_cast<std::size_t>(world_size), 0) {}

void ShrinkBoard::mark_dead(int world_rank, const std::string& why) {
  std::lock_guard<std::mutex> lk(mutex);
  if (!dead[static_cast<std::size_t>(world_rank)]) {
    dead[static_cast<std::size_t>(world_rank)] = 1;
    last_death_reason = why;
  }
  cv.notify_all();
}

bool ShrinkBoard::is_dead(int world_rank) {
  std::lock_guard<std::mutex> lk(mutex);
  return dead[static_cast<std::size_t>(world_rank)] != 0;
}

void GroupRegistry::add(const std::shared_ptr<Group>& g) {
  std::lock_guard<std::mutex> lk(mutex);
  groups.push_back(g);
}

void GroupRegistry::poison_all(const std::string& reason) {
  std::vector<std::shared_ptr<Group>> alive;
  {
    std::lock_guard<std::mutex> lk(mutex);
    alive.reserve(groups.size());
    for (auto& w : groups)
      if (auto g = w.lock()) alive.push_back(std::move(g));
  }
  for (auto& g : alive) g->poison(reason);
}

Group::Group(int size_in)
    : size(size_in),
      src(static_cast<std::size_t>(size_in), nullptr),
      dst(static_cast<std::size_t>(size_in), nullptr),
      fps(static_cast<std::size_t>(size_in)),
      seq_counters(static_cast<std::size_t>(size_in), 0),
      split_keys(static_cast<std::size_t>(size_in), {0, 0}) {
  PARPP_CHECK(size_in >= 1, "communicator group must have >= 1 rank");
}

Group::~Group() {
  // The last member to release its handle destroys the group, and that can
  // happen on a rank thread while a registry-wide poison cascade has only
  // just published this group's fail reason and broadcast its cv from
  // another thread. The poisoner holds a shared_ptr for the duration of the
  // call, so teardown cannot truly overlap it -- but the only ordering
  // between its critical section and this destructor is the refcount chain.
  // Take each lock once so the poisoner's unlock is explicitly ordered
  // before the cv, mutex, and reason string are destroyed.
  { std::lock_guard<std::mutex> lk(mutex); }
  { std::lock_guard<std::mutex> lk(split_mutex); }
}

void Group::poison(const std::string& reason) {
  std::lock_guard<std::mutex> lk(mutex);
  if (!failed) {
    failed = true;
    fail_reason = reason;
  }
  cv.notify_all();
}

void Group::poison_tree(const std::string& reason) {
  if (registry) {
    registry->poison_all(reason);
  } else {
    poison(reason);
  }
}

bool Group::poisoned() {
  std::lock_guard<std::mutex> lk(mutex);
  return failed;
}

void Group::barrier_wait() {
  std::unique_lock<std::mutex> lk(mutex);
  if (dead) throw CommFailure(fail_reason);
  const std::uint64_t my_phase = phase;
  if (++arrived == size) {
    arrived = 0;
    ++phase;
    const bool was_failed = failed;
    if (was_failed) dead = true;  // rendezvous done; no one else is coming
    cv.notify_all();
    if (was_failed) throw CommFailure(fail_reason);
    return;
  }
  auto deadline = std::chrono::steady_clock::now() +
                  to_duration(timeout_seconds);
  bool grace_applied = false;
  int retries_left = barrier_retries;
  while (phase == my_phase && !dead) {
    if (failed && !grace_applied) {
      // Poisoned while waiting. Still rendezvous: peers between the
      // previous barrier and this one may be reading buffers we published,
      // and they only stop needing them once they arrive here. Give them a
      // bounded grace window, then fail regardless (covers a poisoner that
      // already left the collective and will never arrive).
      grace_applied = true;
      deadline = std::chrono::steady_clock::now() +
                 to_duration(std::min(timeout_seconds, 1.0));
    }
    if (cv.wait_until(lk, deadline) == std::cv_status::timeout &&
        phase == my_phase && !dead) {
      if (!grace_applied && !failed && retries_left > 0) {
        // Bounded retry-with-backoff: absorb a transient delay (a slow but
        // live peer) by extending the deadline instead of declaring the
        // group dead at the first expiry. The total budget stays below the
        // kTimeout fault's stall bound, so genuine stalls still poison.
        --retries_left;
        deadline = std::chrono::steady_clock::now() +
                   to_duration(timeout_seconds * retry_backoff);
        continue;
      }
      failed = true;
      dead = true;
      if (fail_reason.empty())
        fail_reason = "collective timed out (unresponsive rank)";
      ++phase;  // release everyone else stuck on this phase
      arrived = 0;
      const std::string reason = fail_reason;
      cv.notify_all();
      lk.unlock();
      if (registry) registry->poison_all(reason);
      throw CommFailure(reason);
    }
  }
  if (failed || dead) throw CommFailure(fail_reason);
}

std::shared_ptr<Group> make_group(int size,
                                  std::shared_ptr<GroupRegistry> registry) {
  auto group = std::make_shared<Group>(size);
  group->registry =
      registry ? std::move(registry) : std::make_shared<GroupRegistry>();
  group->registry->add(group);
  return group;
}

}  // namespace detail

Comm::Comm(std::shared_ptr<detail::Group> group, int rank, CostCounter* cost,
           Profile* profile, FaultyComm* fault)
    : group_(std::move(group)),
      rank_(rank),
      cost_(cost),
      profile_(profile),
      fault_(fault) {}

void Comm::sync() const {
  if (group_ && group_->size > 1) group_->barrier_wait();
}

void Comm::enter_collective(VerifyOp op, index_t count, int root,
                            CommTag tag) const {
  auto& g = *group_;
  if (!g.verify) {
    sync();
    return;
  }
  // Publish this rank's claim next to its staging pointer; the barrier that
  // opens the copy window also publishes the fingerprints — no extra
  // rendezvous. Rank-indexed slots, so the writes race with nothing.
  auto& mine = g.fps[static_cast<std::size_t>(rank_)];
  mine.op = op;
  mine.count = count;
  mine.root = root;
  mine.seq = g.seq_counters[static_cast<std::size_t>(rank_)]++;
  mine.tag = tag;
  sync();
  // Cross-check before any payload copy: a count mismatch would otherwise
  // read out of bounds, a kind mismatch would corrupt staging slots. Every
  // rank sees the identical table, computes the identical diagnosis, and
  // throws — nobody copies, nobody hangs.
  for (int r = 1; r < g.size; ++r) {
    if (fingerprints_match(g.fps[0], g.fps[static_cast<std::size_t>(r)]))
      continue;
    const std::string reason = describe_mismatch(g.fps);
    g.poison_tree(reason);
    throw CommFailure(reason);
  }
  // Every other collective has at least one more internal phase, which pins
  // all ranks inside the op until every cross-check above finished. A bare
  // barrier has none, so a fast rank could return, enter its next
  // collective, and overwrite its fingerprint slot while a slow rank still
  // reads it. Close the check window explicitly for that one op.
  if (op == VerifyOp::kBarrier) sync();
}

void Comm::barrier(CommTag tag) const {
  if (group_ && group_->size > 1)
    enter_collective(VerifyOp::kBarrier, 0, -1, tag);
}

void Comm::poison(const std::string& reason) const {
  if (group_) group_->poison_tree(reason);
}

void Comm::allreduce_sum(double* data, index_t count, CommTag tag) const {
  if (size() <= 1) return;
  ScopedProfile sp(profile_ ? *profile_ : Profile::thread_default(),
                   Kernel::kComm);
  if (cost_) cost_->charge(Collective::kAllReduce, size(), static_cast<double>(count));
  if (fault_)
    fault_->before_collective(Collective::kAllReduce, *group_, data, count);

  auto& g = *group_;
  g.src[static_cast<std::size_t>(rank_)] = data;
  enter_collective(VerifyOp::kAllReduce, count, -1, tag);
  // Each rank sums its own slice from everyone into a private buffer, then
  // publishes the slice; a final gather pass assembles the full result.
  const int p = size();
  const index_t chunk = (count + p - 1) / p;
  const index_t lo = std::min<index_t>(count, rank_ * chunk);
  const index_t hi = std::min<index_t>(count, lo + chunk);
  std::vector<double> slice(static_cast<std::size_t>(hi - lo), 0.0);
  for (int r = 0; r < p; ++r) {
    const double* s = g.src[static_cast<std::size_t>(r)];
    for (index_t i = lo; i < hi; ++i)
      slice[static_cast<std::size_t>(i - lo)] += s[i];
  }
  sync();  // all reads of src complete
  g.src[static_cast<std::size_t>(rank_)] = slice.data();
  g.dst[static_cast<std::size_t>(rank_)] = data;
  sync();
  // Everyone copies every slice into their own buffer.
  for (int r = 0; r < p; ++r) {
    const index_t rlo = std::min<index_t>(count, r * chunk);
    const index_t rhi = std::min<index_t>(count, rlo + chunk);
    std::memcpy(data + rlo, g.src[static_cast<std::size_t>(r)],
                static_cast<std::size_t>(rhi - rlo) * sizeof(double));
  }
  sync();  // slices stay alive until all ranks finished copying
}

void Comm::allgather(const double* in, index_t local_count, double* out,
                     CommTag tag) const {
  if (size() <= 1) {
    if (out != in)
      std::memcpy(out, in,
                  static_cast<std::size_t>(local_count) * sizeof(double));
    return;
  }
  ScopedProfile sp(profile_ ? *profile_ : Profile::thread_default(),
                   Kernel::kComm);
  if (cost_)
    cost_->charge(Collective::kAllGather, size(),
                  static_cast<double>(local_count) * size());
  if (fault_)
    fault_->before_collective(Collective::kAllGather, *group_, nullptr,
                              local_count * size());
  auto& g = *group_;
  g.src[static_cast<std::size_t>(rank_)] = in;
  enter_collective(VerifyOp::kAllGather, local_count, -1, tag);
  for (int r = 0; r < size(); ++r) {
    const double* s = g.src[static_cast<std::size_t>(r)];
    if (out + r * local_count != s)
      std::memcpy(out + r * local_count, s,
                  static_cast<std::size_t>(local_count) * sizeof(double));
  }
  sync();
  if (fault_)
    fault_->after_collective(Collective::kAllGather, out,
                             local_count * size());
}

void Comm::reduce_scatter_sum(const double* in, index_t total_count,
                              double* out, CommTag tag) const {
  const int p = size();
  PARPP_CHECK(total_count % p == 0,
              "reduce_scatter: count must divide by ranks (use padding)");
  const index_t chunk = total_count / p;
  if (p == 1) {
    if (out != in) std::memcpy(out, in, static_cast<std::size_t>(chunk) * sizeof(double));
    return;
  }
  ScopedProfile sp(profile_ ? *profile_ : Profile::thread_default(),
                   Kernel::kComm);
  if (cost_)
    cost_->charge(Collective::kReduceScatter, p,
                  static_cast<double>(total_count));
  if (fault_)
    fault_->before_collective(Collective::kReduceScatter, *group_, nullptr,
                              total_count);
  auto& g = *group_;
  g.src[static_cast<std::size_t>(rank_)] = in;
  enter_collective(VerifyOp::kReduceScatter, total_count, -1, tag);
  const index_t lo = rank_ * chunk;
  std::fill(out, out + chunk, 0.0);
  for (int r = 0; r < p; ++r) {
    const double* s = g.src[static_cast<std::size_t>(r)] + lo;
    for (index_t i = 0; i < chunk; ++i) out[i] += s[i];
  }
  sync();
  if (fault_) fault_->after_collective(Collective::kReduceScatter, out, chunk);
}

void Comm::bcast(double* data, index_t count, int root, CommTag tag) const {
  if (size() <= 1) return;
  ScopedProfile sp(profile_ ? *profile_ : Profile::thread_default(),
                   Kernel::kComm);
  if (cost_)
    cost_->charge(Collective::kBcast, size(), static_cast<double>(count));
  if (fault_)
    fault_->before_collective(Collective::kBcast, *group_,
                              rank_ == root ? data : nullptr, count);
  auto& g = *group_;
  if (rank_ == root) g.src[static_cast<std::size_t>(root)] = data;
  enter_collective(VerifyOp::kBcast, count, root, tag);
  if (rank_ != root)
    std::memcpy(data, g.src[static_cast<std::size_t>(root)],
                static_cast<std::size_t>(count) * sizeof(double));
  sync();
  if (fault_ && rank_ != root)
    fault_->after_collective(Collective::kBcast, data, count);
}

void Comm::alltoall(const double* in, index_t count_per_pair, double* out,
                    CommTag tag) const {
  const int p = size();
  if (p == 1) {
    if (out != in)
      std::memcpy(out, in, static_cast<std::size_t>(count_per_pair) * sizeof(double));
    return;
  }
  ScopedProfile sp(profile_ ? *profile_ : Profile::thread_default(),
                   Kernel::kComm);
  if (cost_)
    cost_->charge(Collective::kAllToAll, p,
                  static_cast<double>(count_per_pair) * p);
  if (fault_)
    fault_->before_collective(Collective::kAllToAll, *group_, nullptr,
                              count_per_pair * p);
  auto& g = *group_;
  g.src[static_cast<std::size_t>(rank_)] = in;
  enter_collective(VerifyOp::kAllToAll, count_per_pair, -1, tag);
  for (int r = 0; r < p; ++r) {
    // Receive chunk destined to me (index rank_) from rank r.
    std::memcpy(out + r * count_per_pair,
                g.src[static_cast<std::size_t>(r)] + rank_ * count_per_pair,
                static_cast<std::size_t>(count_per_pair) * sizeof(double));
  }
  sync();
  if (fault_)
    fault_->after_collective(Collective::kAllToAll, out, count_per_pair * p);
}

Comm Comm::split(int color, int key, CommTag tag) const {
  if (!group_ || group_->size == 1) {
    auto child =
        detail::make_group(1, group_ ? group_->registry : nullptr);
    if (group_) {
      child->timeout_seconds = group_->timeout_seconds;
      child->barrier_retries = group_->barrier_retries;
      child->retry_backoff = group_->retry_backoff;
      child->board = group_->board;
    }
    return Comm(std::move(child), 0, cost_, profile_, fault_);
  }
  auto& g = *group_;
  g.split_keys[static_cast<std::size_t>(rank_)] = {color, key};
  // Colors and keys are rank-local by design, so the fingerprint checks
  // only that everyone is *in* a split (count 0) at the same point.
  enter_collective(VerifyOp::kSplit, 0, -1, tag);
  // One designated rank per color builds the child group.
  bool lowest_of_color = true;
  int my_child_size = 0;
  for (int r = 0; r < g.size; ++r) {
    if (g.split_keys[static_cast<std::size_t>(r)].first == color) {
      ++my_child_size;
      if (r < rank_) lowest_of_color = false;
    }
  }
  if (lowest_of_color) {
    auto child = detail::make_group(my_child_size, g.registry);
    child->timeout_seconds = g.timeout_seconds;
    child->barrier_retries = g.barrier_retries;
    child->retry_backoff = g.retry_backoff;
    child->verify = g.verify;
    // Children share the tree's shrink board so an injected rank-abort at a
    // slice collective still registers the death for the world consensus.
    child->board = g.board;
    std::lock_guard<std::mutex> lk(g.split_mutex);
    g.split_children[color] = std::move(child);
  }
  sync();
  std::shared_ptr<detail::Group> child;
  {
    std::lock_guard<std::mutex> lk(g.split_mutex);
    child = g.split_children.at(color);
  }
  // Child rank: order members by (key, parent rank).
  int child_rank = 0;
  const auto mine = g.split_keys[static_cast<std::size_t>(rank_)];
  for (int r = 0; r < g.size; ++r) {
    if (r == rank_) continue;
    const auto other = g.split_keys[static_cast<std::size_t>(r)];
    if (other.first != color) continue;
    if (other.second < mine.second ||
        (other.second == mine.second && r < rank_))
      ++child_rank;
  }
  sync();  // ensure map reads finish before any later split reuses it
  return Comm(child, child_rank, cost_, profile_, fault_);
}

int Comm::world_rank() const {
  if (!group_ || group_->world_ranks.empty()) return rank_;
  return group_->world_ranks[static_cast<std::size_t>(rank_)];
}

const std::vector<int>& Comm::group_world_ranks() const {
  static const std::vector<int> kEmpty;
  return group_ ? group_->world_ranks : kEmpty;
}

bool Comm::marked_dead() const {
  if (!group_ || !group_->board) return false;
  return group_->board->is_dead(world_rank());
}

void Comm::mark_self_dead(const std::string& why) const {
  if (group_ && group_->board) group_->board->mark_dead(world_rank(), why);
}

Comm Comm::shrink(CommTag tag) const {
  PARPP_CHECK(group_ != nullptr, "shrink: null communicator");
  auto& g = *group_;
  PARPP_CHECK(g.board != nullptr,
              "shrink: communicator tree has no shrink board (runtime was "
              "created without elastic support)");
  PARPP_CHECK(!g.world_ranks.empty(),
              "shrink: only the world communicator can shrink");
  auto board = g.board;
  const int me = world_rank();
  const int world_size = static_cast<int>(board->dead.size());
  // A live straggler reaches this consensus at most one kTimeout stall bound
  // after the failure (the stall breaks once the tree is poisoned, see
  // fault.cpp); waiting longer than that before declaring it dead keeps
  // false declarations out of the common chaos scenarios.
  const double grace = 3.0 * g.timeout_seconds + 1.5;

  std::shared_ptr<detail::Group> adopted;  // strong ref; see last_group doc
  std::unique_lock<std::mutex> lk(board->mutex);
  if (board->dead[static_cast<std::size_t>(me)])
    throw CommFailure("rank " + std::to_string(me) +
                      " was declared dead; cannot rejoin the shrunken "
                      "communicator");
  board->joined[static_cast<std::size_t>(me)] = 1;
  board->cv.notify_all();
  const std::uint64_t my_epoch = board->epoch;
  const auto deadline = std::chrono::steady_clock::now() +
                        detail::to_duration(grace);
  while (board->epoch == my_epoch) {
    bool pending = false;
    for (int w = 0; w < world_size; ++w) {
      const auto s = static_cast<std::size_t>(w);
      if (!board->dead[s] && !board->joined[s]) {
        pending = true;
        break;
      }
    }
    if (!pending) {
      // Every rank not marked dead has joined; the first thread to observe
      // that builds this round's result. The new group gets a *fresh*
      // registry — the old tree stays poisoned and must never infect the
      // rebuilt communicator — and fresh verifier sequence counters.
      std::vector<int> survivors;
      for (int w = 0; w < world_size; ++w)
        if (!board->dead[static_cast<std::size_t>(w)]) survivors.push_back(w);
      if (survivors.empty())
        throw CommFailure("shrink: no surviving ranks");
      auto ng = detail::make_group(static_cast<int>(survivors.size()));
      ng->timeout_seconds = g.timeout_seconds;
      ng->barrier_retries = g.barrier_retries;
      ng->retry_backoff = g.retry_backoff;
      ng->verify = g.verify;
      ng->board = board;
      ng->world_ranks = survivors;
      adopted = std::move(ng);
      board->last_group = adopted;
      board->last_survivors = std::move(survivors);
      std::fill(board->joined.begin(), board->joined.end(), 0);
      ++board->epoch;
      board->cv.notify_all();
      break;
    }
    if (board->cv.wait_until(lk, deadline) == std::cv_status::timeout &&
        board->epoch == my_epoch) {
      // Grace expired: whoever has not joined by now is unresponsive.
      for (int w = 0; w < world_size; ++w) {
        const auto s = static_cast<std::size_t>(w);
        if (!board->dead[s] && !board->joined[s]) {
          board->dead[s] = 1;
          board->last_death_reason =
              "rank " + std::to_string(w) +
              " unresponsive during shrink consensus";
        }
      }
      board->cv.notify_all();
    }
  }
  if (board->dead[static_cast<std::size_t>(me)])
    throw CommFailure("rank " + std::to_string(me) +
                      " was declared unresponsive during shrink consensus");
  int new_rank = -1;
  for (std::size_t i = 0; i < board->last_survivors.size(); ++i) {
    if (board->last_survivors[i] == me) {
      new_rank = static_cast<int>(i);
      break;
    }
  }
  PARPP_CHECK(new_rank >= 0, "shrink: survivor missing from consensus result");
  if (!adopted) adopted = board->last_group.lock();
  lk.unlock();
  if (!adopted)
    throw CommFailure(
        "shrink: rebuilt communicator was released before adoption (its "
        "creating rank aborted during recovery)");
  Comm out(std::move(adopted), new_rank, cost_, profile_, fault_);
  // First collective on the rebuilt communicator: a verified rendezvous
  // (fingerprinted when the tree verifies) proving the new group and its
  // re-registered verifier round-trip before any payload moves.
  out.barrier(tag);
  return out;
}

}  // namespace parpp::mpsim
