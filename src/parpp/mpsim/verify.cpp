#include "parpp/mpsim/verify.hpp"

#include <cstring>

namespace parpp::mpsim {

namespace {

/// Tag names compare by content (the same literal can have distinct
/// addresses across translation units).
bool tag_names_equal(const CommTag& a, const CommTag& b) {
  if (a.name == nullptr || b.name == nullptr) return a.name == b.name;
  return std::strcmp(a.name, b.name) == 0;
}

}  // namespace

const char* verify_op_name(VerifyOp op) {
  switch (op) {
    case VerifyOp::kAllReduce: return "allreduce_sum";
    case VerifyOp::kAllGather: return "allgather";
    case VerifyOp::kReduceScatter: return "reduce_scatter_sum";
    case VerifyOp::kBcast: return "bcast";
    case VerifyOp::kAllToAll: return "alltoall";
    case VerifyOp::kBarrier: return "barrier";
    case VerifyOp::kSplit: return "split";
  }
  return "?";
}

bool fingerprints_match(const Fingerprint& a, const Fingerprint& b) {
  return a.op == b.op && a.count == b.count && a.root == b.root &&
         a.seq == b.seq && tag_names_equal(a.tag, b.tag);
}

std::string describe_fingerprint(const Fingerprint& fp) {
  std::string s = verify_op_name(fp.op);
  s += "(count=" + std::to_string(fp.count);
  if (fp.root >= 0) s += ", root=" + std::to_string(fp.root);
  s += ")";
  if (fp.tag.name != nullptr) {
    s += std::string(" '") + fp.tag.name + "'";
    if (fp.tag.file != nullptr)
      s += std::string(" at ") + fp.tag.file + ":" +
           std::to_string(fp.tag.line);
  } else {
    s += " (untagged)";
  }
  s += " [seq " + std::to_string(fp.seq) + "]";
  return s;
}

std::string describe_mismatch(const std::vector<Fingerprint>& fps) {
  // Group ranks by identical claim, preserving first-rank order, so all
  // ranks derive the same deterministic report.
  std::vector<std::string> members;   // "0,2,3" per group
  std::vector<std::size_t> exemplar;  // rank index whose claim to print
  for (std::size_t r = 0; r < fps.size(); ++r) {
    bool placed = false;
    for (std::size_t g = 0; g < exemplar.size(); ++g) {
      if (fingerprints_match(fps[exemplar[g]], fps[r])) {
        members[g] += "," + std::to_string(r);
        placed = true;
        break;
      }
    }
    if (!placed) {
      members.push_back(std::to_string(r));
      exemplar.push_back(r);
    }
  }
  std::string s = "collective mismatch at rendezvous:";
  for (std::size_t g = 0; g < exemplar.size(); ++g) {
    s += " rank(s) " + members[g] + " called " +
         describe_fingerprint(fps[exemplar[g]]) + ";";
  }
  return s;
}

}  // namespace parpp::mpsim
