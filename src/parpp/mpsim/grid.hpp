// N-dimensional logical processor grid (paper Sec. II-A / Algorithm 3).
#pragma once

#include <vector>

#include "parpp/mpsim/comm.hpp"
#include "parpp/util/common.hpp"

namespace parpp::mpsim {

/// Maps world ranks to coordinates on an order-N grid I_1 x ... x I_N
/// (row-major: last grid mode varies fastest) and builds the per-mode
/// "slice" sub-communicators of Algorithm 3: for mode i, the group of all
/// processors sharing the same i-th coordinate x_i (size P / I_i). The
/// MTTKRP Reduce-Scatter and factor All-Gather for mode i run inside that
/// group.
class ProcessorGrid {
 public:
  ProcessorGrid(Comm world, std::vector<int> dims);

  [[nodiscard]] int order() const { return static_cast<int>(dims_.size()); }
  [[nodiscard]] const std::vector<int>& dims() const { return dims_; }
  [[nodiscard]] int dim(int mode) const {
    return dims_[static_cast<std::size_t>(mode)];
  }
  [[nodiscard]] int world_size() const { return world_.size(); }
  [[nodiscard]] int world_rank() const { return world_.rank(); }
  [[nodiscard]] const Comm& world() const { return world_; }

  /// This rank's grid coordinates.
  [[nodiscard]] const std::vector<int>& coords() const { return coords_; }
  [[nodiscard]] int coord(int mode) const {
    return coords_[static_cast<std::size_t>(mode)];
  }

  [[nodiscard]] std::vector<int> coords_of(int rank) const;
  [[nodiscard]] int rank_of(const std::vector<int>& coords) const;

  /// Sub-communicator of ranks sharing this rank's coordinate on `mode`
  /// (built collectively in the constructor; cheap accessor afterwards).
  [[nodiscard]] const Comm& slice_comm(int mode) const {
    return slice_comms_[static_cast<std::size_t>(mode)];
  }
  /// Number of ranks in each slice group for `mode` (P / I_mode).
  [[nodiscard]] int slice_size(int mode) const {
    return world_.size() / dim(mode);
  }

  /// Factorizes `nprocs` into `order` near-balanced grid dims (largest
  /// factors on the largest tensor modes is the caller's concern; this
  /// returns non-increasing dims).
  [[nodiscard]] static std::vector<int> balanced_dims(int nprocs, int order);

 private:
  Comm world_;
  std::vector<int> dims_;
  std::vector<int> coords_;
  std::vector<Comm> slice_comms_;
};

}  // namespace parpp::mpsim
