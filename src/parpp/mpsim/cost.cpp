#include "parpp/mpsim/cost.hpp"

#include <atomic>
#include <chrono>
#include <cmath>

namespace parpp::mpsim {

namespace {
std::atomic<bool> g_network_enabled{false};
CostParams g_network_params;
}  // namespace

void NetworkModel::enable(const CostParams& params) {
  g_network_params = params;
  g_network_enabled.store(true, std::memory_order_release);
}

void NetworkModel::disable() {
  g_network_enabled.store(false, std::memory_order_release);
}

bool NetworkModel::enabled() {
  return g_network_enabled.load(std::memory_order_acquire);
}

void NetworkModel::delay(double msgs, double words) {
  if (!enabled()) return;
  const double seconds =
      msgs * g_network_params.alpha + words * g_network_params.beta;
  if (seconds <= 0.0) return;
  // Spin on the steady clock: sleep_for granularity (~50us) would distort
  // the microsecond-scale latencies being modeled.
  const auto start = std::chrono::steady_clock::now();
  const auto budget = std::chrono::duration<double>(seconds);
  while (std::chrono::steady_clock::now() - start < budget) {
  }
}

const char* collective_name(Collective c) {
  switch (c) {
    case Collective::kAllGather: return "All-Gather";
    case Collective::kReduceScatter: return "Reduce-Scatter";
    case Collective::kAllReduce: return "All-Reduce";
    case Collective::kBcast: return "Bcast";
    case Collective::kAllToAll: return "All-to-All";
    case Collective::kCount: break;
  }
  return "?";
}

void CostCounter::charge(Collective c, int procs, double words) {
  if (procs <= 1) return;
  const double logp = std::log2(static_cast<double>(procs));
  double msgs = logp, moved = words;
  if (c == Collective::kAllReduce) {
    msgs = 2.0 * logp;
    moved = 2.0 * words;
  }
  total_.add_collective(msgs, moved);
  per_class_[static_cast<int>(c)].add_collective(msgs, moved);
  NetworkModel::delay(msgs, moved);
}

void CostCounter::clear() {
  total_ = CostTally{};
  for (auto& t : per_class_) t = CostTally{};
}

void CostCounter::accumulate(const CostCounter& other) {
  total_.accumulate(other.total_);
  for (int i = 0; i < static_cast<int>(Collective::kCount); ++i)
    per_class_[i].accumulate(other.per_class_[i]);
}

}  // namespace parpp::mpsim
