// Per-rank communication cost accounting for the simulator.
#pragma once

#include "parpp/util/cost_model.hpp"

namespace parpp::mpsim {

/// Classes of collectives whose alpha/beta charges are tracked separately so
/// benches can attribute communication to algorithm phases.
enum class Collective : int {
  kAllGather = 0,
  kReduceScatter,
  kAllReduce,
  kBcast,
  kAllToAll,
  kCount
};

[[nodiscard]] const char* collective_name(Collective c);

/// Optional network-delay injection: when enabled, every collective spins
/// for the alpha-beta modeled time of the messages/words it charged. This
/// lets the thread-rank simulator reproduce communication-bound *wall
/// clock* behaviour (e.g. Table II) that shared-memory copies would
/// otherwise hide. Global, process-wide; off by default (tests measure
/// pure algorithm behaviour).
class NetworkModel {
 public:
  static void enable(const CostParams& params);
  static void disable();
  [[nodiscard]] static bool enabled();
  /// Spin for msgs * alpha + words * beta seconds if enabled.
  static void delay(double msgs, double words);
};

/// Accumulates the BSP model charges (Sec. II-E) per rank. `charge` applies
/// the paper's costs: All-Gather / Reduce-Scatter log(P) alpha + n beta,
/// All-Reduce 2 log(P) alpha + 2 n beta, Bcast log(P) alpha + n beta,
/// All-to-All log(P) alpha + n beta (simplified). No charge when P == 1.
class CostCounter {
 public:
  void charge(Collective c, int procs, double words);

  [[nodiscard]] const CostTally& total() const { return total_; }
  [[nodiscard]] const CostTally& by_class(Collective c) const {
    return per_class_[static_cast<int>(c)];
  }
  void clear();
  void accumulate(const CostCounter& other);

 private:
  CostTally total_;
  CostTally per_class_[static_cast<int>(Collective::kCount)];
};

}  // namespace parpp::mpsim
