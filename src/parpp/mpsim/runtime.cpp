#include "parpp/mpsim/runtime.hpp"

#include <omp.h>

#include <algorithm>
#include <exception>
#include <thread>

namespace parpp::mpsim {

CostCounter RunResult::max_cost() const {
  // Use the rank with the largest total modeled seconds as the critical
  // path representative.
  CostCounter best;
  double best_s = -1.0;
  const CostParams params;
  for (const auto& c : costs) {
    const double s = c.total().seconds(params);
    if (s > best_s) {
      best_s = s;
      best = c;
    }
  }
  return best;
}

Profile RunResult::max_profile() const {
  Profile best;
  double best_s = -1.0;
  for (const auto& p : profiles) {
    if (p.total_seconds() > best_s) {
      best_s = p.total_seconds();
      best = p;
    }
  }
  return best;
}

RunResult run(int nprocs, const std::function<void(Comm&)>& body,
              const RunOptions& options) {
  PARPP_CHECK(nprocs >= 1, "run: need at least one rank");
  RunResult result;
  result.costs.resize(static_cast<std::size_t>(nprocs));
  result.profiles.resize(static_cast<std::size_t>(nprocs));

  auto group = std::make_shared<detail::Group>(nprocs);
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(nprocs));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nprocs));

  for (int r = 0; r < nprocs; ++r) {
    threads.emplace_back([&, r] {
      omp_set_num_threads(std::max(1, options.threads_per_rank));
      Profile::thread_default().clear();
      // Pass no explicit profile: collectives then charge the thread-local
      // default, the same sink the kernels use, so per-sweep deltas taken by
      // drivers see compute and communication together.
      Comm comm(group, r, &result.costs[static_cast<std::size_t>(r)], nullptr);
      try {
        body(comm);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
      }
      // Kernels that used the thread-local default profile report here.
      result.profiles[static_cast<std::size_t>(r)].accumulate(
          Profile::thread_default());
    });
  }
  for (auto& t : threads) t.join();
  for (const auto& e : errors)
    if (e) std::rethrow_exception(e);
  return result;
}

}  // namespace parpp::mpsim
