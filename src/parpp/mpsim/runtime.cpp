#include "parpp/mpsim/runtime.hpp"

#include <omp.h>

#include <algorithm>
#include <cstdlib>
#include <exception>
#include <memory>
#include <string>
#include <thread>

namespace parpp::mpsim {

CostCounter RunResult::max_cost() const {
  // Use the rank with the largest total modeled seconds as the critical
  // path representative.
  CostCounter best;
  double best_s = -1.0;
  const CostParams params;
  for (const auto& c : costs) {
    const double s = c.total().seconds(params);
    if (s > best_s) {
      best_s = s;
      best = c;
    }
  }
  return best;
}

Profile RunResult::max_profile() const {
  Profile best;
  double best_s = -1.0;
  for (const auto& p : profiles) {
    if (p.total_seconds() > best_s) {
      best_s = p.total_seconds();
      best = p;
    }
  }
  return best;
}

RunResult run(int nprocs, const std::function<void(Comm&)>& body,
              const RunOptions& options) {
  PARPP_CHECK(nprocs >= 1, "run: need at least one rank");
  const bool faulty = options.fault.active();
  if (faulty) {
    for (const auto& ev : options.fault.events()) {
      PARPP_CHECK(ev.rank >= 0 && ev.rank < nprocs,
                  "run: fault event targets rank ", ev.rank, " outside [0, ",
                  nprocs, ")");
      PARPP_CHECK(ev.nth >= 1, "run: fault event nth must be >= 1");
      PARPP_CHECK(ev.repeat >= 1, "run: fault event repeat must be >= 1");
      PARPP_CHECK(ev.repeat == 1 || ev.period >= 1,
                  "run: repeating fault event needs period >= 1");
    }
  }
  RunResult result;
  result.costs.resize(static_cast<std::size_t>(nprocs));
  result.profiles.resize(static_cast<std::size_t>(nprocs));

  auto group = detail::make_group(nprocs);
  group->timeout_seconds = options.comm_timeout_seconds > 0.0
                               ? options.comm_timeout_seconds
                               : (faulty ? 2.0 : 60.0);
  group->barrier_retries = std::max(0, options.barrier_retries);
  // Every world group carries a shrink board so elastic drivers can rebuild
  // after a failure; it is pure idle state when nothing ever shrinks.
  group->board = std::make_shared<detail::ShrinkBoard>(nprocs);
  group->world_ranks.resize(static_cast<std::size_t>(nprocs));
  for (int r = 0; r < nprocs; ++r)
    group->world_ranks[static_cast<std::size_t>(r)] = r;
  bool verify = options.verify_collectives;
  if (const char* env = std::getenv("PARPP_VERIFY_COLLECTIVES"))
    verify = env[0] != '\0' && env[0] != '0';
  group->verify = verify;
  std::vector<std::unique_ptr<FaultyComm>> faults(
      static_cast<std::size_t>(nprocs));
  if (faulty) {
    for (int r = 0; r < nprocs; ++r)
      faults[static_cast<std::size_t>(r)] =
          std::make_unique<FaultyComm>(options.fault, r);
  }
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(nprocs));
  std::vector<char> comm_failures(static_cast<std::size_t>(nprocs), 0);
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nprocs));

  for (int r = 0; r < nprocs; ++r) {
    threads.emplace_back([&, r] {
      omp_set_num_threads(std::max(1, options.threads_per_rank));
      Profile::thread_default().clear();
      // Pass no explicit profile: collectives then charge the thread-local
      // default, the same sink the kernels use, so per-sweep deltas taken by
      // drivers see compute and communication together.
      Comm comm(group, r, &result.costs[static_cast<std::size_t>(r)], nullptr,
                faults[static_cast<std::size_t>(r)].get());
      try {
        body(comm);
      } catch (const CommFailure&) {
        // The tree is already poisoned (that is how CommFailure spreads);
        // just record it.
        errors[static_cast<std::size_t>(r)] = std::current_exception();
        comm_failures[static_cast<std::size_t>(r)] = 1;
      } catch (const std::exception& e) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
        group->poison_tree("rank " + std::to_string(r) +
                           " exception: " + e.what());
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
        group->poison_tree("rank " + std::to_string(r) +
                           " threw a non-standard exception");
      }
      // Kernels that used the thread-local default profile report here.
      result.profiles[static_cast<std::size_t>(r)].accumulate(
          Profile::thread_default());
    });
  }
  for (auto& t : threads) t.join();
  // Prefer the root cause: a rank's own exception poisons the tree and the
  // peers then all throw secondary CommFailures.
  for (std::size_t r = 0; r < errors.size(); ++r)
    if (errors[r] && !comm_failures[r]) std::rethrow_exception(errors[r]);
  for (const auto& e : errors)
    if (e) std::rethrow_exception(e);
  return result;
}

}  // namespace parpp::mpsim
