// parpp_lint — house-invariant checks the compiler cannot express.
//
// Usage: parpp_lint <repo-root>
//
// Four rule families over src/, tests/, bench/, examples/ and tools/:
//
//  1. Layering. The storage and math layers (core/, la/, tensor/, data/,
//     util/) must never reference the simulator (mpsim) or call
//     collectives: the parallel layer depends on them, never the reverse.
//     This is what keeps the kernels testable without a communicator and
//     the future MPI backend a drop-in swap.
//
//  2. Allocation discipline. Hot-loop files (the MTTKRP/MTTV/GEMM kernels)
//     must stay allocation-free in steady state: no naked new/malloc and
//     no std::vector growth. Audited cold paths opt out with a
//     `// parpp-lint: allow(alloc)` on the same or preceding line.
//
//  3. Tagged collectives. Every mpsim::Comm collective call-site outside
//     the simulator itself must pass PARPP_COMM_TAG(...) — the macro, not
//     a hand-rolled CommTag — so the matching verifier can attribute a
//     mismatched rendezvous to exact source lines on every rank.
//
//  4. Hygiene. No tabs, no trailing whitespace, no CRLF, a final newline,
//     lines at most 90 columns.
//
// Plain C++ with no third-party dependencies so it builds and runs
// anywhere the library does; registered as a ctest, enforced in CI.
// Comments and string literals are stripped before token checks, so prose
// never trips a rule (and this file can lint itself).

#include <cctype>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

constexpr std::size_t kMaxLine = 90;

struct Finding {
  std::string file;
  std::size_t line;
  std::string rule;
  std::string message;
};

std::vector<Finding> g_findings;

void report(const fs::path& file, std::size_t line, const std::string& rule,
            const std::string& message) {
  g_findings.push_back({file.generic_string(), line, rule, message});
}

/// Replaces comments and string/char literals with spaces (newlines kept),
/// so token scans see code only and line numbers stay valid.
std::string strip_comments_and_strings(const std::string& text) {
  std::string out(text.size(), ' ');
  enum class St { kCode, kLine, kBlock, kStr, kChr };
  St st = St::kCode;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char n = i + 1 < text.size() ? text[i + 1] : '\0';
    if (c == '\n') out[i] = '\n';
    switch (st) {
      case St::kCode:
        if (c == '/' && n == '/') {
          st = St::kLine;
        } else if (c == '/' && n == '*') {
          st = St::kBlock;
          ++i;
        } else if (c == '"') {
          st = St::kStr;
        } else if (c == '\'') {
          st = St::kChr;
        } else {
          out[i] = c;
        }
        break;
      case St::kLine:
        if (c == '\n') st = St::kCode;
        break;
      case St::kBlock:
        if (c == '*' && n == '/') {
          st = St::kCode;
          ++i;
        }
        break;
      case St::kStr:
        if (c == '\\') {
          ++i;
          if (i < text.size() && text[i] == '\n') out[i] = '\n';
        } else if (c == '"') {
          st = St::kCode;
        }
        break;
      case St::kChr:
        if (c == '\\') {
          ++i;
        } else if (c == '\'') {
          st = St::kCode;
        }
        break;
    }
  }
  return out;
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::string cur;
  for (char c : text) {
    if (c == '\n') {
      lines.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  lines.push_back(cur);
  return lines;
}

std::size_t line_of_offset(const std::string& text, std::size_t off) {
  std::size_t line = 1;
  for (std::size_t i = 0; i < off && i < text.size(); ++i)
    if (text[i] == '\n') ++line;
  return line;
}

bool identifier_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// True when `token` occurs at `pos` with identifier boundaries.
bool word_at(const std::string& s, std::size_t pos, const std::string& token) {
  if (s.compare(pos, token.size(), token) != 0) return false;
  if (pos > 0 && identifier_char(s[pos - 1])) return false;
  const std::size_t end = pos + token.size();
  if (end < s.size() && identifier_char(s[end])) return false;
  return true;
}

// ---------------------------------------------------------------------------
// Rule 4: hygiene (raw text).

void check_hygiene(const fs::path& file, const std::string& raw) {
  if (raw.find('\r') != std::string::npos)
    report(file, 1, "hygiene", "CRLF line endings (use LF)");
  if (!raw.empty() && raw.back() != '\n')
    report(file, line_of_offset(raw, raw.size()), "hygiene",
           "missing final newline");
  const auto lines = split_lines(raw);
  for (std::size_t i = 0; i + 1 <= lines.size(); ++i) {
    const std::string& ln = lines[i];
    if (i + 1 == lines.size() && ln.empty()) break;  // after final newline
    if (ln.find('\t') != std::string::npos)
      report(file, i + 1, "hygiene", "tab character (use spaces)");
    if (!ln.empty() &&
        (ln.back() == ' ' || (ln.size() > 1 && ln.back() == '\r' &&
                              ln[ln.size() - 2] == ' ')))
      report(file, i + 1, "hygiene", "trailing whitespace");
    if (ln.size() > kMaxLine)
      report(file, i + 1, "hygiene",
             "line exceeds " + std::to_string(kMaxLine) + " columns (" +
                 std::to_string(ln.size()) + ")");
  }
}

// ---------------------------------------------------------------------------
// Rule 1: layering (stripped text).

bool in_dir(const std::string& rel, const std::string& dir) {
  return rel.rfind(dir, 0) == 0;
}

void check_layering(const fs::path& file, const std::string& rel,
                    const std::string& stripped) {
  static const std::vector<std::string> kLowerLayers = {
      "src/parpp/core/", "src/parpp/la/", "src/parpp/tensor/",
      "src/parpp/data/", "src/parpp/util/"};
  bool lower = false;
  for (const auto& d : kLowerLayers) lower = lower || in_dir(rel, d);
  if (!lower) return;
  for (std::size_t pos = 0; (pos = stripped.find("mpsim", pos)) !=
                            std::string::npos;
       ++pos) {
    if (!word_at(stripped, pos, "mpsim")) continue;
    report(file, line_of_offset(stripped, pos), "layering",
           "storage/math layers must not reference mpsim (collectives "
           "belong to dist/ and par/)");
  }
}

// ---------------------------------------------------------------------------
// Rule 2: allocation discipline in hot kernels (stripped text, raw lines
// for the allow(alloc) escape).

bool allow_alloc(const std::vector<std::string>& raw_lines, std::size_t line) {
  const std::string kEscape = "parpp-lint: allow(alloc)";
  for (std::size_t l = line; l >= 1 && l + 1 >= line; --l) {
    if (l - 1 < raw_lines.size() &&
        raw_lines[l - 1].find(kEscape) != std::string::npos)
      return true;
    if (l == 1) break;
  }
  return false;
}

void check_alloc(const fs::path& file, const std::string& rel,
                 const std::string& stripped,
                 const std::vector<std::string>& raw_lines) {
  static const std::vector<std::string> kHotFiles = {
      "src/parpp/tensor/mttkrp_sparse.cpp",
      "src/parpp/tensor/mttkrp_fused.cpp",
      "src/parpp/tensor/mttv.cpp",
      "src/parpp/la/gemm.cpp",
      // The scalar-type axis: fp32 mirror sync runs once per factor update
      // on the hot sweep path, so it carries the same discipline (its
      // shape-change resize is an annotated cold path).
      "src/parpp/la/scalar.hpp",
  };
  bool hot = false;
  for (const auto& f : kHotFiles) hot = hot || rel == f;
  if (!hot) return;

  static const std::vector<std::string> kWordTokens = {"new", "malloc"};
  static const std::vector<std::string> kGrowthCalls = {
      "push_back", "emplace_back", "resize", "reserve"};

  for (std::size_t i = 0; i < stripped.size(); ++i) {
    for (const auto& t : kWordTokens) {
      if (!word_at(stripped, i, t)) continue;
      const std::size_t line = line_of_offset(stripped, i);
      if (!allow_alloc(raw_lines, line))
        report(file, line, "alloc",
               "naked '" + t + "' in a hot-loop file (lease from "
               "KernelWorkspace, or annotate an audited cold path)");
    }
    for (const auto& t : kGrowthCalls) {
      if (i == 0 || !word_at(stripped, i, t)) continue;
      const char prev = stripped[i - 1];
      if (prev != '.' && prev != '>') continue;  // .call( or ->call(
      std::size_t j = i + t.size();
      while (j < stripped.size() && stripped[j] == ' ') ++j;
      if (j >= stripped.size() || stripped[j] != '(') continue;
      const std::size_t line = line_of_offset(stripped, i);
      if (!allow_alloc(raw_lines, line))
        report(file, line, "alloc",
               "container growth ('" + t + "') in a hot-loop file "
               "(preallocate, or annotate an audited cold path)");
    }
  }
}

// ---------------------------------------------------------------------------
// Rule 3: tagged collectives (stripped text; macro names survive stripping
// because they are code, not strings).

void check_tags(const fs::path& file, const std::string& rel,
                const std::string& stripped) {
  if (in_dir(rel, "src/parpp/mpsim/")) return;  // the implementation layer
  // `shrink` is not a data collective, but its closing rendezvous on the
  // rebuilt communicator goes through the verifier, so call sites must
  // carry a tag like any other collective.
  static const std::vector<std::string> kCollectives = {
      "allreduce_sum", "allgather", "reduce_scatter_sum",
      "bcast",         "alltoall",  "barrier",
      "shrink"};
  for (std::size_t i = 1; i < stripped.size(); ++i) {
    for (const auto& name : kCollectives) {
      if (!word_at(stripped, i, name)) continue;
      const char prev = stripped[i - 1];
      if (prev != '.' && prev != '>') continue;  // member call only
      std::size_t j = i + name.size();
      while (j < stripped.size() && std::isspace(
                 static_cast<unsigned char>(stripped[j])))
        ++j;
      if (j >= stripped.size() || stripped[j] != '(') continue;
      // Walk the balanced argument list and demand the tag macro inside.
      int depth = 0;
      std::size_t k = j;
      for (; k < stripped.size(); ++k) {
        if (stripped[k] == '(') ++depth;
        if (stripped[k] == ')' && --depth == 0) break;
      }
      const std::string args = stripped.substr(j, k - j + 1);
      if (args.find("PARPP_COMM_TAG") == std::string::npos)
        report(file, line_of_offset(stripped, i), "comm-tag",
               "collective '" + name + "' without PARPP_COMM_TAG "
               "(the verifier needs the call site)");
    }
  }
  // Hand-rolled tags defeat the point of the macro (file/line capture).
  for (std::size_t pos = 0;
       (pos = stripped.find("CommTag", pos)) != std::string::npos; ++pos) {
    if (!word_at(stripped, pos, "CommTag")) continue;
    std::size_t j = pos + 7;
    while (j < stripped.size() &&
           std::isspace(static_cast<unsigned char>(stripped[j])))
      ++j;
    if (j < stripped.size() && stripped[j] == '{')
      report(file, line_of_offset(stripped, pos), "comm-tag",
             "hand-rolled CommTag{...} (use PARPP_COMM_TAG so the call "
             "site is captured)");
  }
}

// ---------------------------------------------------------------------------

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::cerr << "usage: parpp_lint <repo-root>\n";
    return 2;
  }
  const fs::path root = argv[1];
  const std::vector<std::string> kDirs = {"src", "tests", "bench",
                                          "examples", "tools"};
  std::size_t files = 0;
  for (const auto& dir : kDirs) {
    const fs::path base = root / dir;
    if (!fs::exists(base)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file() || !lintable(entry.path())) continue;
      ++files;
      std::ifstream in(entry.path(), std::ios::binary);
      std::ostringstream ss;
      ss << in.rdbuf();
      const std::string raw = ss.str();
      const std::string rel =
          fs::relative(entry.path(), root).generic_string();
      const std::string stripped = strip_comments_and_strings(raw);
      const std::vector<std::string> raw_lines = split_lines(raw);
      check_hygiene(entry.path(), raw);
      check_layering(entry.path(), rel, stripped);
      check_alloc(entry.path(), rel, stripped, raw_lines);
      check_tags(entry.path(), rel, stripped);
    }
  }
  for (const auto& f : g_findings)
    std::cerr << f.file << ":" << f.line << ": [" << f.rule << "] "
              << f.message << "\n";
  if (!g_findings.empty()) {
    std::cerr << g_findings.size() << " finding(s) in " << files
              << " file(s)\n";
    return 1;
  }
  std::cout << "parpp_lint: " << files << " files clean\n";
  return 0;
}
