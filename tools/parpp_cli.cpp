// parpp_cli — command-line front end for the parpp library.
//
// Decomposes a built-in synthetic dataset (or a tensor file written with
// parpp::io) using any engine/driver combination, optionally in parallel
// on the simulated runtime, and can save the resulting factors.
//
//   parpp_cli --dataset lowrank --size 64 --rank 16 --engine msdt
//   parpp_cli --dataset chem --rank 32 --pp --save factors.bin
//   parpp_cli --dataset collinear --procs 8 --engine dt
//   parpp_cli --load tensor.bin --rank 8 --nonneg
#include <cstdio>
#include <cstring>
#include <string>

#include "parpp/core/cp_als.hpp"
#include "parpp/core/nncp.hpp"
#include "parpp/core/normalize.hpp"
#include "parpp/core/pp_als.hpp"
#include "parpp/data/chemistry.hpp"
#include "parpp/data/coil.hpp"
#include "parpp/data/collinearity.hpp"
#include "parpp/data/hyperspectral.hpp"
#include "parpp/mpsim/grid.hpp"
#include "parpp/par/par_pp.hpp"
#include "parpp/tensor/reconstruct.hpp"
#include "parpp/util/serialize.hpp"
#include "parpp/util/timer.hpp"

using namespace parpp;

namespace {

struct Cli {
  std::string dataset = "lowrank";
  std::string load_path;
  std::string save_path;
  std::string engine = "msdt";
  index_t size = 64;
  index_t rank = 16;
  int procs = 1;
  int max_sweeps = 200;
  double tol = 1e-6;
  double pp_tol = 0.1;
  std::uint64_t seed = 42;
  bool pp = false;
  bool nonneg = false;
  bool help = false;
};

Cli parse(int argc, char** argv) {
  Cli cli;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (flag == "--dataset") cli.dataset = next();
    else if (flag == "--load") cli.load_path = next();
    else if (flag == "--save") cli.save_path = next();
    else if (flag == "--engine") cli.engine = next();
    else if (flag == "--size") cli.size = std::atol(next());
    else if (flag == "--rank") cli.rank = std::atol(next());
    else if (flag == "--procs") cli.procs = std::atoi(next());
    else if (flag == "--max-sweeps") cli.max_sweeps = std::atoi(next());
    else if (flag == "--tol") cli.tol = std::atof(next());
    else if (flag == "--pp-tol") cli.pp_tol = std::atof(next());
    else if (flag == "--seed") cli.seed = std::strtoull(next(), nullptr, 10);
    else if (flag == "--pp") cli.pp = true;
    else if (flag == "--nonneg") cli.nonneg = true;
    else if (flag == "--help" || flag == "-h") cli.help = true;
    else {
      std::fprintf(stderr, "unknown flag %s (try --help)\n", flag.c_str());
      std::exit(2);
    }
  }
  return cli;
}

void usage() {
  std::printf(
      "parpp_cli — CP decomposition with dimension trees and pairwise "
      "perturbation\n\n"
      "  --dataset D     lowrank | random | collinear | chem | coil | "
      "timelapse (default lowrank)\n"
      "  --load FILE     read a tensor written with parpp::io instead\n"
      "  --save FILE     write the resulting factors (parpp::io format)\n"
      "  --engine E      naive | dt | msdt (default msdt)\n"
      "  --size S        synthetic mode size (default 64)\n"
      "  --rank R        CP rank (default 16)\n"
      "  --procs P       simulated ranks; P > 1 runs Algorithm 3/4\n"
      "  --pp            use the pairwise-perturbation driver\n"
      "  --nonneg        nonnegative CP via HALS (sequential only)\n"
      "  --max-sweeps N  (default 200)   --tol T (default 1e-6)\n"
      "  --pp-tol E      PP tolerance epsilon (default 0.1)\n"
      "  --seed N        RNG seed (default 42)\n");
}

tensor::DenseTensor make_dataset(const Cli& cli) {
  if (!cli.load_path.empty()) return io::load_tensor_file(cli.load_path);
  if (cli.dataset == "lowrank") {
    return tensor::reconstruct(
        core::init_factors({cli.size, cli.size, cli.size}, cli.rank, cli.seed));
  }
  if (cli.dataset == "random") {
    tensor::DenseTensor t({cli.size, cli.size, cli.size});
    Rng rng(cli.seed);
    t.fill_uniform(rng);
    return t;
  }
  if (cli.dataset == "collinear") {
    return data::make_collinear_tensor({cli.size, cli.size, cli.size},
                                       cli.rank, 0.5, 0.9, cli.seed, 1e-3)
        .tensor;
  }
  if (cli.dataset == "chem") {
    data::ChemistryOptions opt;
    opt.naux = 2 * cli.size;
    opt.norb = cli.size;
    opt.seed = cli.seed;
    return data::make_density_fitting_tensor(opt);
  }
  if (cli.dataset == "coil") {
    data::CoilOptions opt;
    opt.height = cli.size / 2;
    opt.width = cli.size / 2;
    opt.seed = cli.seed;
    return data::make_coil_tensor(opt);
  }
  if (cli.dataset == "timelapse") {
    data::HyperspectralOptions opt;
    opt.height = cli.size;
    opt.width = cli.size;
    opt.seed = cli.seed;
    return data::make_hyperspectral_tensor(opt);
  }
  std::fprintf(stderr, "unknown dataset %s\n", cli.dataset.c_str());
  std::exit(2);
}

core::EngineKind engine_of(const std::string& name) {
  if (name == "naive") return core::EngineKind::kNaive;
  if (name == "dt") return core::EngineKind::kDt;
  if (name == "msdt") return core::EngineKind::kMsdt;
  std::fprintf(stderr, "unknown engine %s\n", name.c_str());
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli = parse(argc, argv);
  if (cli.help) {
    usage();
    return 0;
  }

  const tensor::DenseTensor t = make_dataset(cli);
  std::printf("tensor:");
  for (index_t e : t.shape()) std::printf(" %lld", static_cast<long long>(e));
  std::printf("  |T| = %.4e\n", t.frobenius_norm());

  core::CpOptions opt;
  opt.rank = cli.rank;
  opt.max_sweeps = cli.max_sweeps;
  opt.tol = cli.tol;
  opt.seed = cli.seed;
  opt.engine = engine_of(cli.engine);

  WallTimer timer;
  std::vector<la::Matrix> factors;
  double fitness = 0.0;
  int sweeps = 0;

  if (cli.procs > 1) {
    par::ParOptions popt;
    popt.base = opt;
    popt.local_engine = opt.engine;
    popt.grid_dims =
        mpsim::ProcessorGrid::balanced_dims(cli.procs, t.order());
    par::ParResult r;
    if (cli.pp) {
      par::ParPpOptions ppopt;
      ppopt.par = popt;
      ppopt.pp.pp_tol = cli.pp_tol;
      r = par::par_pp_cp_als(t, cli.procs, ppopt);
    } else {
      r = par::par_cp_als(t, cli.procs, popt);
    }
    factors = std::move(r.factors);
    fitness = r.fitness;
    sweeps = r.sweeps;
    std::printf("parallel run on %d ranks (grid", cli.procs);
    for (int d : popt.grid_dims) std::printf(" %d", d);
    std::printf("): comm %.0f msgs, %.3e words per rank\n",
                r.comm_cost.total().messages,
                r.comm_cost.total().words_horizontal);
  } else if (cli.nonneg) {
    const auto r = core::nncp_hals(t, opt);
    factors = std::move(r.factors);
    fitness = r.fitness;
    sweeps = r.sweeps;
  } else if (cli.pp) {
    core::PpOptions pp;
    pp.pp_tol = cli.pp_tol;
    const auto r = core::pp_cp_als(t, opt, pp);
    factors = std::move(r.factors);
    fitness = r.fitness;
    sweeps = r.sweeps;
    std::printf("sweeps: %d ALS + %d PP-init + %d PP-approx\n",
                r.num_als_sweeps, r.num_pp_init, r.num_pp_approx);
  } else {
    auto r = core::cp_als(t, opt);
    factors = std::move(r.factors);
    fitness = r.fitness;
    sweeps = r.sweeps;
  }

  std::printf("fitness %.8f after %d sweeps in %.3fs\n", fitness, sweeps,
              timer.seconds());

  if (!cli.save_path.empty()) {
    const auto lambda = core::normalize_columns(factors);
    core::absorb_weights(factors, lambda, 0);
    io::save_factors_file(cli.save_path, factors);
    std::printf("factors written to %s (weights absorbed into mode 0)\n",
                cli.save_path.c_str());
  }
  return 0;
}
