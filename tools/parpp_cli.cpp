// parpp_cli — command-line front end for the parpp library.
//
// Decomposes a built-in synthetic dataset (or a tensor file written with
// parpp::io) through the parpp::solve() facade: any method (als, pp, nncp,
// pp-nncp) x any engine x sequential or simulated-parallel execution.
//
//   parpp_cli --dataset lowrank --size 64 --rank 16 --engine msdt
//   parpp_cli --dataset chem --rank 32 --pp --save factors.bin
//   parpp_cli --dataset collinear --ranks 8 --engine dt
//   parpp_cli --load tensor.bin --rank 8 --nonneg
//   parpp_cli --dataset timelapse --pp --nonneg          # PP x NNCP
//   parpp_cli --input amazon.tns --rank 16               # sparse (FROSTT)
//   parpp_cli --density 0.01 --size 64 --engine sparse   # synthetic sparse
//   parpp_cli --density 0.01 --ranks 4 --threads-per-rank 2 --pp
//                                             # distributed sparse PP
#include <omp.h>

#include <cstdio>
#include <cstring>
#include <exception>
#include <optional>
#include <string>

#include "parpp/core/normalize.hpp"
#include "parpp/data/chemistry.hpp"
#include "parpp/data/coil.hpp"
#include "parpp/data/collinearity.hpp"
#include "parpp/data/hyperspectral.hpp"
#include "parpp/data/sparse_synthetic.hpp"
#include "parpp/solver/solver.hpp"
#include "parpp/tensor/csf_tensor.hpp"
#include "parpp/tensor/reconstruct.hpp"
#include "parpp/util/serialize.hpp"
#include "parpp/util/timer.hpp"

using namespace parpp;

namespace {

struct Cli {
  std::string dataset = "lowrank";
  std::string load_path;
  std::string input_path;  ///< FROSTT .tns (sparse path)
  std::string save_path;
  double density = 0.0;  ///< selects the synthetic sparse generator
  bool density_set = false;
  bool dataset_set = false;
  std::string engine = "msdt";
  std::string method;  ///< empty: derived from --pp / --nonneg
  std::string partition = "uniform";
  std::string scalar = "fp64";
  std::string csf_layout = "all-modes";
  index_t size = 64;
  index_t rank = 16;
  int procs = 1;
  int threads_per_rank = 1;
  bool threads_set = false;
  int max_sweeps = 200;
  double tol = 1e-6;
  double pp_tol = 0.1;
  double max_seconds = 0.0;
  std::uint64_t seed = 42;
  bool pp = false;
  bool nonneg = false;
  bool help = false;

  // Chaos / resilience knobs.
  std::string fault = "none";
  int fault_rank = 0;
  int fault_nth = 1;
  std::string fault_collective;  ///< empty: any collective class
  double fault_delay = 0.05;
  int fault_repeat = 1;
  int fault_period = 1;
  double comm_timeout = 0.0;
  std::string elastic = "off";
  std::string checkpoint_path;
  int checkpoint_every = 0;
  bool resume = false;
};

Cli parse(int argc, char** argv) {
  Cli cli;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (flag == "--dataset") { cli.dataset = next(); cli.dataset_set = true; }
    else if (flag == "--load") cli.load_path = next();
    else if (flag == "--input") cli.input_path = next();
    else if (flag == "--density") {
      cli.density = std::atof(next());
      cli.density_set = true;
    }
    else if (flag == "--save") cli.save_path = next();
    else if (flag == "--engine") cli.engine = next();
    else if (flag == "--scalar") cli.scalar = next();
    else if (flag == "--csf-layout") cli.csf_layout = next();
    else if (flag == "--method") cli.method = next();
    else if (flag == "--size") cli.size = std::atol(next());
    else if (flag == "--rank") cli.rank = std::atol(next());
    else if (flag == "--procs" || flag == "--ranks")
      cli.procs = std::atoi(next());
    else if (flag == "--partition") cli.partition = next();
    else if (flag == "--threads-per-rank") {
      cli.threads_per_rank = std::atoi(next());
      cli.threads_set = true;
    }
    else if (flag == "--max-sweeps") cli.max_sweeps = std::atoi(next());
    else if (flag == "--tol") cli.tol = std::atof(next());
    else if (flag == "--pp-tol") cli.pp_tol = std::atof(next());
    else if (flag == "--max-seconds") cli.max_seconds = std::atof(next());
    else if (flag == "--seed") cli.seed = std::strtoull(next(), nullptr, 10);
    else if (flag == "--pp") cli.pp = true;
    else if (flag == "--nonneg") cli.nonneg = true;
    else if (flag == "--fault") cli.fault = next();
    else if (flag == "--fault-rank") cli.fault_rank = std::atoi(next());
    else if (flag == "--fault-nth") cli.fault_nth = std::atoi(next());
    else if (flag == "--fault-collective") cli.fault_collective = next();
    else if (flag == "--fault-delay") cli.fault_delay = std::atof(next());
    else if (flag == "--fault-repeat") cli.fault_repeat = std::atoi(next());
    else if (flag == "--fault-period") cli.fault_period = std::atoi(next());
    else if (flag == "--comm-timeout") cli.comm_timeout = std::atof(next());
    else if (flag == "--elastic") cli.elastic = next();
    else if (flag == "--checkpoint") cli.checkpoint_path = next();
    else if (flag == "--checkpoint-every")
      cli.checkpoint_every = std::atoi(next());
    else if (flag == "--resume") cli.resume = true;
    else if (flag == "--help" || flag == "-h") cli.help = true;
    else {
      std::fprintf(stderr, "unknown flag %s (try --help)\n", flag.c_str());
      std::exit(2);
    }
  }
  return cli;
}

void usage() {
  std::printf(
      "parpp_cli — CP decomposition with dimension trees and pairwise "
      "perturbation\n\n"
      "  --dataset D     lowrank | random | collinear | chem | coil | "
      "timelapse (default lowrank)\n"
      "  --load FILE     read a tensor written with parpp::io instead\n"
      "  --input FILE    read a sparse FROSTT .tns tensor (CSF storage,\n"
      "                  sparse engine; every method and execution)\n"
      "  --density D     synthetic sparse low-rank tensor at density D\n"
      "                  (same sparse path as --input)\n"
      "  --save FILE     write the resulting factors (parpp::io format)\n"
      "  --method M      als | pp | nncp | pp-nncp (default als; --pp and\n"
      "                  --nonneg compose to the same four methods)\n"
      "  --engine E      naive | dt | msdt | sparse (default msdt; sparse\n"
      "                  inputs always run the sparse engine)\n"
      "  --scalar S      fp64 | fp32 — storage scalar the kernels stream\n"
      "                  (fp32 halves bandwidth, accumulation stays fp64;\n"
      "                  naive and sparse engines only; default fp64)\n"
      "  --csf-layout L  all-modes | half — CSF trees kept for sparse\n"
      "                  inputs (half keeps ceil(N/2) trees, halving\n"
      "                  pattern memory; PP needs all-modes; default\n"
      "                  all-modes)\n"
      "  --size S        synthetic mode size (default 64)\n"
      "  --rank R        CP rank (default 16)\n"
      "  --ranks N       simulated ranks (alias --procs); N > 1 runs\n"
      "                  Algorithm 3/4, dense or sparse\n"
      "  --partition P   uniform | balanced — how sparse nonzeros are\n"
      "                  split over the grid (balanced equalizes per-rank\n"
      "                  nnz on skewed tensors; default uniform)\n"
      "  --threads-per-rank T  OpenMP threads inside each rank's kernels\n"
      "                  (parallel default 1; sequential default: ambient)\n"
      "  --pp            use the pairwise-perturbation driver\n"
      "  --nonneg        nonnegative CP via HALS\n"
      "  --max-sweeps N  (default 200)   --tol T (default 1e-6)\n"
      "  --pp-tol E      PP tolerance epsilon (default 0.1)\n"
      "  --max-seconds S wall-clock budget, 0 = unlimited (default 0)\n"
      "  --seed N        RNG seed (default 42)\n\n"
      "resilience (chaos runs need --ranks N > 1):\n"
      "  --fault K       inject a deterministic communication fault:\n"
      "                  delay | timeout | rank-abort | corruption\n"
      "  --fault-rank R  world rank that misbehaves (default 0)\n"
      "  --fault-nth N   fire at rank R's Nth collective (default 1)\n"
      "  --fault-collective C  restrict to one collective class:\n"
      "                  allgather | reduce-scatter | allreduce | bcast |\n"
      "                  alltoall (default: any)\n"
      "  --fault-delay S sleep length for --fault delay (default 0.05)\n"
      "  --fault-repeat N  fire the fault N times (default 1)\n"
      "  --fault-period P  matching collectives between repeats (default 1)\n"
      "  --comm-timeout S  collective timeout; 0 = runtime default\n"
      "  --elastic M     off | shrink — shrink-and-continue recovery:\n"
      "                  survivors rebuild a smaller communicator,\n"
      "                  repartition, and resume from the replicated\n"
      "                  snapshot (status recovered-shrunk; default off)\n"
      "  --checkpoint FILE  crash-consistent checkpoint file\n"
      "  --checkpoint-every K  checkpoint period in sweeps (default 0 = "
      "off)\n"
      "  --resume        warm-start from --checkpoint FILE when it exists\n");
}

tensor::DenseTensor make_dataset(const Cli& cli) {
  if (!cli.load_path.empty()) return io::load_tensor_file(cli.load_path);
  if (cli.dataset == "lowrank") {
    return tensor::reconstruct(
        core::init_factors({cli.size, cli.size, cli.size}, cli.rank, cli.seed));
  }
  if (cli.dataset == "random") {
    tensor::DenseTensor t({cli.size, cli.size, cli.size});
    Rng rng(cli.seed);
    t.fill_uniform(rng);
    return t;
  }
  if (cli.dataset == "collinear") {
    return data::make_collinear_tensor({cli.size, cli.size, cli.size},
                                       cli.rank, 0.5, 0.9, cli.seed, 1e-3)
        .tensor;
  }
  if (cli.dataset == "chem") {
    data::ChemistryOptions opt;
    opt.naux = 2 * cli.size;
    opt.norb = cli.size;
    opt.seed = cli.seed;
    return data::make_density_fitting_tensor(opt);
  }
  if (cli.dataset == "coil") {
    data::CoilOptions opt;
    opt.height = cli.size / 2;
    opt.width = cli.size / 2;
    opt.seed = cli.seed;
    return data::make_coil_tensor(opt);
  }
  if (cli.dataset == "timelapse") {
    data::HyperspectralOptions opt;
    opt.height = cli.size;
    opt.width = cli.size;
    opt.seed = cli.seed;
    return data::make_hyperspectral_tensor(opt);
  }
  std::fprintf(stderr, "unknown dataset %s\n", cli.dataset.c_str());
  std::exit(2);
}

solver::Method method_of(const Cli& cli) {
  if (!cli.method.empty()) {
    if (cli.pp || cli.nonneg) {
      std::fprintf(stderr,
                   "--method cannot be combined with --pp/--nonneg (pick "
                   "one way to select the method)\n");
      std::exit(2);
    }
    const auto m = solver::method_from_string(cli.method);
    if (!m) {
      std::fprintf(stderr, "unknown method %s\n", cli.method.c_str());
      std::exit(2);
    }
    return *m;
  }
  if (cli.pp && cli.nonneg) return solver::Method::kPpNncp;
  if (cli.pp) return solver::Method::kPp;
  if (cli.nonneg) return solver::Method::kNncpHals;
  return solver::Method::kAls;
}

std::optional<mpsim::Collective> collective_of(const std::string& s) {
  if (s == "allgather") return mpsim::Collective::kAllGather;
  if (s == "reduce-scatter") return mpsim::Collective::kReduceScatter;
  if (s == "allreduce") return mpsim::Collective::kAllReduce;
  if (s == "bcast") return mpsim::Collective::kBcast;
  if (s == "alltoall") return mpsim::Collective::kAllToAll;
  return std::nullopt;
}

int run(const Cli& cli) {
  // Validate flag combinations before the (possibly expensive) dataset.
  if (cli.density_set && !(cli.density > 0.0 && cli.density <= 1.0)) {
    std::fprintf(stderr, "--density must be in (0, 1]\n");
    return 2;
  }
  const bool sparse_mode = !cli.input_path.empty() || cli.density_set;
  if (sparse_mode && (!cli.load_path.empty() || cli.dataset_set)) {
    std::fprintf(stderr,
                 "--input/--density selects the sparse path; it cannot be "
                 "combined with --load or --dataset\n");
    return 2;
  }
  if (!cli.input_path.empty() && cli.density_set) {
    std::fprintf(stderr, "pick one of --input and --density\n");
    return 2;
  }
  const solver::Method method = method_of(cli);
  const auto engine = solver::engine_from_string(cli.engine);
  if (!engine) {
    std::fprintf(stderr, "unknown engine %s\n", cli.engine.c_str());
    return 2;
  }
  if (*engine == core::EngineKind::kSparse && !sparse_mode) {
    std::fprintf(stderr,
                 "--engine sparse needs sparse storage: pass --input "
                 "FILE.tns or --density D\n");
    return 2;
  }
  const auto scalar = solver::scalar_from_string(cli.scalar);
  if (!scalar) {
    std::fprintf(stderr, "unknown scalar %s (fp64 | fp32)\n",
                 cli.scalar.c_str());
    return 2;
  }
  if (*scalar == la::Scalar::kF32 && !sparse_mode &&
      *engine != core::EngineKind::kNaive) {
    std::fprintf(stderr,
                 "--scalar fp32 on dense storage needs --engine naive (the "
                 "dimension-tree engines are fp64-only)\n");
    return 2;
  }
  if (*scalar == la::Scalar::kF32 && !sparse_mode && method != solver::Method::kAls &&
      method != solver::Method::kNncpHals) {
    std::fprintf(stderr,
                 "--scalar fp32 with a PP method needs sparse storage (the "
                 "dense PP operator chains are fp64-only)\n");
    return 2;
  }
  const auto csf_layout = solver::csf_layout_from_string(cli.csf_layout);
  if (!csf_layout) {
    std::fprintf(stderr, "unknown csf layout %s (all-modes | half)\n",
                 cli.csf_layout.c_str());
    return 2;
  }
  if (*csf_layout == tensor::CsfLayout::kHalf && !sparse_mode) {
    std::fprintf(stderr,
                 "--csf-layout applies to sparse storage: pass --input "
                 "FILE.tns or --density D\n");
    return 2;
  }
  if (*csf_layout == tensor::CsfLayout::kHalf &&
      (method == solver::Method::kPp || method == solver::Method::kPpNncp)) {
    std::fprintf(stderr,
                 "--csf-layout half cannot serve the PP pair operators "
                 "(they need a root tree per mode); use all-modes\n");
    return 2;
  }
  if (cli.procs < 1 || cli.threads_per_rank < 1) {
    std::fprintf(stderr, "--ranks and --threads-per-rank must be >= 1\n");
    return 2;
  }
  const auto partition = solver::partition_from_string(cli.partition);
  if (!partition) {
    std::fprintf(stderr, "unknown partition %s (uniform | balanced)\n",
                 cli.partition.c_str());
    return 2;
  }
  if (*partition == dist::PartitionKind::kBalancedNnz && !sparse_mode) {
    std::fprintf(stderr,
                 "--partition balanced needs sparse storage: pass --input "
                 "FILE.tns or --density D\n");
    return 2;
  }
  if (*partition == dist::PartitionKind::kBalancedNnz && cli.procs <= 1) {
    std::fprintf(stderr,
                 "--partition balanced needs a parallel run: pass --ranks "
                 "N > 1 (a single rank has nothing to balance)\n");
    return 2;
  }
  const auto fault_kind = solver::fault_kind_from_string(cli.fault);
  if (!fault_kind) {
    std::fprintf(stderr,
                 "unknown fault %s (none | delay | timeout | rank-abort | "
                 "corruption)\n",
                 cli.fault.c_str());
    return 2;
  }
  if (*fault_kind != mpsim::FaultKind::kNone && cli.procs <= 1) {
    std::fprintf(stderr,
                 "--fault injects communication faults; pass --ranks N > 1\n");
    return 2;
  }
  std::optional<mpsim::Collective> fault_coll;
  if (!cli.fault_collective.empty()) {
    fault_coll = collective_of(cli.fault_collective);
    if (!fault_coll) {
      std::fprintf(stderr,
                   "unknown collective %s (allgather | reduce-scatter | "
                   "allreduce | bcast | alltoall)\n",
                   cli.fault_collective.c_str());
      return 2;
    }
  }
  if ((cli.checkpoint_every > 0 || cli.resume) &&
      cli.checkpoint_path.empty()) {
    std::fprintf(stderr,
                 "--checkpoint-every/--resume need --checkpoint FILE\n");
    return 2;
  }
  if (cli.fault_repeat < 1 || cli.fault_period < 1) {
    std::fprintf(stderr, "--fault-repeat/--fault-period must be >= 1\n");
    return 2;
  }
  const auto elastic_mode = solver::elastic_mode_from_string(cli.elastic);
  if (!elastic_mode) {
    std::fprintf(stderr, "unknown elastic mode %s (off | shrink)\n",
                 cli.elastic.c_str());
    return 2;
  }
  if (*elastic_mode != par::ElasticMode::kOff && cli.procs <= 1) {
    std::fprintf(stderr,
                 "--elastic shrink recovers from rank loss; pass --ranks "
                 "N > 1\n");
    return 2;
  }

  solver::SolverSpec spec;
  spec.method = method;
  spec.engine = *engine;
  spec.engine_options.scalar = *scalar;
  spec.rank = cli.rank;
  spec.seed = cli.seed;
  spec.stopping.max_sweeps = cli.max_sweeps;
  spec.stopping.fitness_tol = cli.tol;
  spec.stopping.max_seconds = cli.max_seconds;
  spec.pp.pp_tol = cli.pp_tol;
  if (cli.procs > 1) {
    spec.execution = solver::Execution::simulated_parallel(
        cli.procs, {}, par::SolveMode::kDistributedRows,
        cli.threads_per_rank);
    spec.execution.partition = *partition;
  } else if (cli.threads_set) {
    // Sequential runs use the ambient OpenMP thread count unless the flag
    // is given explicitly — then it caps the kernels the same way the
    // per-rank limit does in parallel runs.
    omp_set_num_threads(cli.threads_per_rank);
  }
  if (*fault_kind != mpsim::FaultKind::kNone) {
    spec.execution.fault.kind = *fault_kind;
    spec.execution.fault.rank = cli.fault_rank;
    spec.execution.fault.nth = cli.fault_nth;
    spec.execution.fault.delay_seconds = cli.fault_delay;
    spec.execution.fault.repeat = cli.fault_repeat;
    spec.execution.fault.period = cli.fault_period;
    spec.execution.fault.seed = cli.seed;
    if (fault_coll) {
      spec.execution.fault.filter_collective = true;
      spec.execution.fault.collective = *fault_coll;
    }
  }
  spec.execution.comm_timeout_seconds = cli.comm_timeout;
  spec.execution.elastic.mode = *elastic_mode;
  spec.checkpoint.path = cli.checkpoint_path;
  spec.checkpoint.every = cli.checkpoint_every;
  spec.checkpoint.resume = cli.resume;

  auto print_run = [&](const char* engine_name) {
    std::printf("method %s, engine %s, %s\n",
                std::string(solver::to_string(spec.method)).c_str(),
                engine_name,
                cli.procs > 1 ? "simulated-parallel" : "sequential");
  };

  WallTimer timer;
  solver::SolveReport report;
  if (sparse_mode) {
    const tensor::CooTensor coo =
        !cli.input_path.empty()
            ? io::load_tns_file(cli.input_path)
            : data::make_sparse_lowrank({cli.size, cli.size, cli.size},
                                        cli.rank, cli.density, cli.seed)
                  .tensor;
    const tensor::CsfTensor t(coo, tensor::CsfOptions{*csf_layout});
    std::printf("tensor:");
    for (index_t e : t.shape())
      std::printf(" %lld", static_cast<long long>(e));
    std::printf("  nnz = %lld (density %.3e)  |T| = %.4e\n",
                static_cast<long long>(t.nnz()), t.density(),
                t.frobenius_norm());
    spec.engine = core::EngineKind::kSparse;
    print_run("sparse");
    timer.reset();
    report = parpp::solve(t, spec);
  } else {
    const tensor::DenseTensor t = make_dataset(cli);
    std::printf("tensor:");
    for (index_t e : t.shape())
      std::printf(" %lld", static_cast<long long>(e));
    std::printf("  |T| = %.4e\n", t.frobenius_norm());
    print_run(std::string(solver::to_string(spec.engine)).c_str());
    timer.reset();
    report = parpp::solve(t, spec);
  }

  if (spec.execution.is_parallel()) {
    std::printf("parallel run on %d ranks: comm %.0f msgs, %.3e words per "
                "rank\n",
                cli.procs, report.comm_cost.total().messages,
                report.comm_cost.total().words_horizontal);
    if (report.nnz_imbalance > 0.0) {
      std::printf("partition %s: nnz imbalance (max/mean) %.3f\n",
                  std::string(solver::to_string(*partition)).c_str(),
                  report.nnz_imbalance);
    }
    if (report.final_ranks > 0 && report.final_ranks != cli.procs) {
      std::printf("elastic shrink: finished on %d of %d ranks",
                  report.final_ranks, cli.procs);
      if (report.post_shrink_nnz_imbalance > 0.0)
        std::printf(" (post-shrink nnz imbalance %.3f)",
                    report.post_shrink_nnz_imbalance);
      std::printf("\n");
    }
  }
  if (report.num_pp_init > 0 || report.num_pp_approx > 0) {
    std::printf("sweeps: %d regular + %d PP-init + %d PP-approx\n",
                report.num_als_sweeps, report.num_pp_init,
                report.num_pp_approx);
  }
  std::printf("fitness %.10f after %d sweeps in %.3fs (stop: %s, status: "
              "%s)\n",
              report.fitness, report.sweeps, timer.seconds(),
              std::string(solver::to_string(report.stop_reason)).c_str(),
              std::string(solver::to_string(report.status)).c_str());
  if (!report.recovery_log.empty()) {
    std::printf("recovery log (%zu event(s)):\n", report.recovery_log.size());
    for (const core::RecoveryEvent& e : report.recovery_log)
      std::printf("  [sweep %d] %s\n", e.sweep, e.what.c_str());
  }

  if (!cli.save_path.empty()) {
    auto factors = std::move(report.factors);
    const auto lambda = core::normalize_columns(factors);
    core::absorb_weights(factors, lambda, 0);
    io::save_factors_file(cli.save_path, factors);
    std::printf("factors written to %s (weights absorbed into mode 0)\n",
                cli.save_path.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli = parse(argc, argv);
  if (cli.help) {
    usage();
    return 0;
  }
  // Structured errors (bad spec, malformed input file, I/O failure) exit 1
  // with one line on stderr; flag misuse exits 2 above.
  try {
    return run(cli);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
