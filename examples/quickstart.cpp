// Quickstart: decompose a synthetic low-rank tensor with CP-ALS.
//
// Demonstrates the three MTTKRP engines (naive, dimension tree, multi-sweep
// dimension tree) and the pairwise-perturbation driver on the same problem,
// printing fitness and per-kernel time for each.
//
//   ./quickstart [--size 64] [--rank 8]
#include <cstdio>

#include "parpp/core/cp_als.hpp"
#include "parpp/core/pp_als.hpp"
#include "parpp/tensor/reconstruct.hpp"
#include "parpp/util/timer.hpp"

using namespace parpp;

int main(int argc, char** argv) {
  index_t size = 64, rank = 8;
  for (int i = 1; i + 1 < argc; i += 2) {
    const std::string flag = argv[i];
    if (flag == "--size") size = std::atol(argv[i + 1]);
    if (flag == "--rank") rank = std::atol(argv[i + 1]);
  }

  std::printf("parpp quickstart: CP decomposition of a %lld^3 rank-%lld "
              "tensor\n\n",
              static_cast<long long>(size), static_cast<long long>(rank));

  // 1. Build a tensor with known CP structure: T = [[A1, A2, A3]].
  const std::vector<index_t> shape{size, size, size};
  const auto truth = core::init_factors(shape, rank, /*seed=*/7);
  const tensor::DenseTensor t = tensor::reconstruct(truth);
  std::printf("tensor norm: %.4f\n\n", t.frobenius_norm());

  // 2. Decompose with each engine.
  core::CpOptions options;
  options.rank = rank;
  options.max_sweeps = 100;
  options.tol = 1e-8;

  for (core::EngineKind kind :
       {core::EngineKind::kNaive, core::EngineKind::kDt,
        core::EngineKind::kMsdt}) {
    options.engine = kind;
    WallTimer timer;
    const core::CpResult result = core::cp_als(t, options);
    std::printf("%-6s engine: fitness %.8f after %3d sweeps in %.3fs  [%s]\n",
                core::engine_kind_name(kind), result.fitness, result.sweeps,
                timer.seconds(), result.profile.summary().c_str());
  }

  // 3. Pairwise perturbation accelerates the convergence tail.
  {
    core::PpOptions pp;
    pp.pp_tol = 0.1;
    WallTimer timer;
    const core::CpResult result = core::pp_cp_als(t, options, pp);
    std::printf("%-6s driver: fitness %.8f after %3d sweeps in %.3fs  "
                "(ALS %d / PP-init %d / PP-approx %d)\n",
                "PP", result.fitness, result.sweeps, timer.seconds(),
                result.num_als_sweeps, result.num_pp_init,
                result.num_pp_approx);
  }

  std::printf("\nAll engines recover the planted rank-%lld structure; DT and "
              "MSDT produce\nidentical sweeps with fewer flops, and PP "
              "replaces late-stage sweeps with\ncheap perturbative "
              "corrections.\n",
              static_cast<long long>(rank));
  return 0;
}
