// Quickstart: decompose a synthetic low-rank tensor through parpp::solve().
//
// One SolverSpec composes every axis: the MTTKRP engine (naive, dimension
// tree, multi-sweep dimension tree), the method (plain ALS vs the
// pairwise-perturbation driver), and a per-sweep observer streaming
// progress — same problem throughout, printing fitness and per-kernel time.
//
//   ./quickstart [--size 64] [--rank 8]
#include <cstdio>

#include "parpp/data/sparse_synthetic.hpp"
#include "parpp/solver/solver.hpp"
#include "parpp/tensor/csf_tensor.hpp"
#include "parpp/tensor/reconstruct.hpp"
#include "parpp/util/timer.hpp"

using namespace parpp;

int main(int argc, char** argv) {
  index_t size = 64, rank = 8;
  for (int i = 1; i + 1 < argc; i += 2) {
    const std::string flag = argv[i];
    if (flag == "--size") size = std::atol(argv[i + 1]);
    if (flag == "--rank") rank = std::atol(argv[i + 1]);
  }

  std::printf("parpp quickstart: CP decomposition of a %lld^3 rank-%lld "
              "tensor\n\n",
              static_cast<long long>(size), static_cast<long long>(rank));

  // 1. Build a tensor with known CP structure: T = [[A1, A2, A3]].
  const std::vector<index_t> shape{size, size, size};
  const auto truth = core::init_factors(shape, rank, /*seed=*/7);
  const tensor::DenseTensor t = tensor::reconstruct(truth);
  std::printf("tensor norm: %.4f\n\n", t.frobenius_norm());

  // 2. One spec, swept over the engine axis.
  solver::SolverSpec spec;
  spec.rank = rank;
  spec.stopping.max_sweeps = 100;
  spec.stopping.fitness_tol = 1e-8;

  for (core::EngineKind kind :
       {core::EngineKind::kNaive, core::EngineKind::kDt,
        core::EngineKind::kMsdt}) {
    spec.engine = kind;
    WallTimer timer;
    const solver::SolveReport report = parpp::solve(t, spec);
    std::printf("%-6s engine: fitness %.8f after %3d sweeps in %.3fs  [%s]\n",
                std::string(solver::to_string(kind)).c_str(), report.fitness,
                report.sweeps, timer.seconds(),
                report.profile.summary().c_str());
  }

  // 3. Flip the method axis: pairwise perturbation accelerates the
  //    convergence tail. Nothing else about the spec changes.
  {
    spec.method = solver::Method::kPp;
    spec.engine = core::EngineKind::kMsdt;
    spec.pp.pp_tol = 0.1;
    WallTimer timer;
    const solver::SolveReport report = parpp::solve(t, spec);
    std::printf("%-6s driver: fitness %.8f after %3d sweeps in %.3fs  "
                "(regular %d / PP-init %d / PP-approx %d)\n",
                "PP", report.fitness, report.sweeps, timer.seconds(),
                report.num_als_sweeps, report.num_pp_init,
                report.num_pp_approx);
  }

  // 4. Observers stream progress (and could abort by returning kStop).
  {
    spec.method = solver::Method::kAls;
    spec.stopping.max_sweeps = 5;
    int printed = 0;
    spec.observer = [&printed](const core::SweepRecord& rec,
                               const std::vector<la::Matrix>&) {
      std::printf("  observer: sweep %d (%s) fitness %.6f at %.3fs\n",
                  ++printed, rec.phase.c_str(), rec.fitness, rec.seconds);
      return solver::ObserverAction::kContinue;
    };
    (void)parpp::solve(t, spec);
  }

  // 5. The storage axis: the same front door takes a sparse tensor (CSF),
  //    runs the sparse MTTKRP engine, and never densifies.
  {
    const auto gen = data::make_sparse_lowrank(shape, rank, 0.01, 7);
    const tensor::CsfTensor csf(gen.tensor);
    solver::SolverSpec sparse_spec;
    sparse_spec.rank = rank;
    sparse_spec.stopping.max_sweeps = 100;
    sparse_spec.stopping.fitness_tol = 1e-8;
    WallTimer timer;
    const solver::SolveReport report = parpp::solve(csf, sparse_spec);
    std::printf("\nsparse engine: %lld nnz (density %.1e), fitness %.8f "
                "after %3d sweeps in %.3fs\n",
                static_cast<long long>(csf.nnz()), csf.density(),
                report.fitness, report.sweeps, timer.seconds());
  }

  std::printf("\nAll engines recover the planted rank-%lld structure; DT and "
              "MSDT produce\nidentical sweeps with fewer flops, and PP "
              "replaces late-stage sweeps with\ncheap perturbative "
              "corrections.\n",
              static_cast<long long>(rank));
  return 0;
}
