// Example: the Execution axis of parpp::solve() — the same spec runs
// sequentially or on the simulated message-passing runtime (Algorithm 3/4).
//
// Shows grid construction, the engine configurations (DT, MSDT, PP),
// wall-clock and modeled communication cost per sweep, and the exactness
// guarantee (any grid reproduces the sequential trajectory).
//
//   ./parallel_scaling [--size 48] [--rank 16] [--procs 8]
#include <cstdio>

#include "parpp/mpsim/grid.hpp"
#include "parpp/solver/solver.hpp"
#include "parpp/tensor/reconstruct.hpp"

using namespace parpp;

int main(int argc, char** argv) {
  index_t size = 48, rank = 16;
  int procs = 8;
  for (int i = 1; i + 1 < argc; i += 2) {
    const std::string flag = argv[i];
    if (flag == "--size") size = std::atol(argv[i + 1]);
    if (flag == "--rank") rank = std::atol(argv[i + 1]);
    if (flag == "--procs") procs = std::atoi(argv[i + 1]);
  }

  const std::vector<index_t> shape{size, size, size};
  const auto truth = core::init_factors(shape, rank, 21);
  const tensor::DenseTensor t = tensor::reconstruct(truth);

  solver::SolverSpec spec;
  spec.rank = rank;
  spec.engine = core::EngineKind::kDt;
  spec.stopping.max_sweeps = 25;
  spec.stopping.fitness_tol = 1e-7;

  // Sequential reference: the default Execution.
  const solver::SolveReport seq = parpp::solve(t, spec);
  std::printf("sequential DT:    fitness %.8f in %d sweeps\n", seq.fitness,
              seq.sweeps);

  const auto dims = mpsim::ProcessorGrid::balanced_dims(procs, 3);
  std::printf("processor grid:   %dx%dx%d (%d simulated ranks)\n\n", dims[0],
              dims[1], dims[2], procs);

  // Same spec, parallel execution — only the Execution axis changes.
  spec.execution = solver::Execution::simulated_parallel(procs, dims);
  for (core::EngineKind kind :
       {core::EngineKind::kDt, core::EngineKind::kMsdt}) {
    spec.engine = kind;
    const solver::SolveReport r = parpp::solve(t, spec);
    std::printf(
        "parallel %-5s  fitness %.8f | %.4fs/sweep | comm: %.0f msgs, "
        "%.3e words per rank\n",
        std::string(solver::to_string(kind)).c_str(), r.fitness,
        r.mean_sweep_seconds, r.comm_cost.total().messages,
        r.comm_cost.total().words_horizontal);
  }

  // And the method axis on top: parallel pairwise perturbation.
  spec.method = solver::Method::kPp;
  spec.engine = core::EngineKind::kMsdt;
  spec.pp.pp_tol = 0.1;
  const solver::SolveReport r = parpp::solve(t, spec);
  std::printf(
      "parallel PP     fitness %.8f | %.4fs/sweep | sweeps: %d regular + %d "
      "init + %d approx\n",
      r.fitness, r.mean_sweep_seconds, r.num_als_sweeps, r.num_pp_init,
      r.num_pp_approx);

  std::printf(
      "\nAll parallel variants reproduce the sequential fitness: the\n"
      "distribution is exact (deterministic initialization + the same\n"
      "update order), only cost changes with the grid.\n");
  return 0;
}
