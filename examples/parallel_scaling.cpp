// Example: running the distributed Algorithm 3/4 drivers on the simulated
// message-passing runtime.
//
// Shows the public parallel API end to end: grid construction, the three
// engine configurations (DT, MSDT, PP), wall-clock and modeled
// communication cost per sweep, and the exactness guarantee (any grid
// reproduces the sequential trajectory).
//
//   ./parallel_scaling [--size 48] [--rank 16] [--procs 8]
#include <cstdio>

#include "parpp/core/cp_als.hpp"
#include "parpp/mpsim/grid.hpp"
#include "parpp/par/par_pp.hpp"
#include "parpp/tensor/reconstruct.hpp"

using namespace parpp;

int main(int argc, char** argv) {
  index_t size = 48, rank = 16;
  int procs = 8;
  for (int i = 1; i + 1 < argc; i += 2) {
    const std::string flag = argv[i];
    if (flag == "--size") size = std::atol(argv[i + 1]);
    if (flag == "--rank") rank = std::atol(argv[i + 1]);
    if (flag == "--procs") procs = std::atoi(argv[i + 1]);
  }

  const std::vector<index_t> shape{size, size, size};
  const auto truth = core::init_factors(shape, rank, 21);
  const tensor::DenseTensor t = tensor::reconstruct(truth);

  // Sequential reference.
  core::CpOptions base;
  base.rank = rank;
  base.max_sweeps = 25;
  base.tol = 1e-7;
  const core::CpResult seq = core::cp_als(t, base);
  std::printf("sequential DT:    fitness %.8f in %d sweeps\n", seq.fitness,
              seq.sweeps);

  const auto dims = mpsim::ProcessorGrid::balanced_dims(procs, 3);
  std::printf("processor grid:   %dx%dx%d (%d simulated ranks)\n\n", dims[0],
              dims[1], dims[2], procs);

  par::ParOptions popt;
  popt.base = base;
  popt.grid_dims = dims;
  for (core::EngineKind kind : {core::EngineKind::kDt, core::EngineKind::kMsdt}) {
    popt.local_engine = kind;
    const par::ParResult r = par::par_cp_als(t, procs, popt);
    std::printf(
        "parallel %-5s  fitness %.8f | %.4fs/sweep | comm: %.0f msgs, "
        "%.3e words per rank\n",
        core::engine_kind_name(kind), r.fitness, r.mean_sweep_seconds,
        r.comm_cost.total().messages, r.comm_cost.total().words_horizontal);
  }

  par::ParPpOptions ppopt;
  ppopt.par = popt;
  ppopt.pp.pp_tol = 0.1;
  const par::ParResult r = par::par_pp_cp_als(t, procs, ppopt);
  std::printf(
      "parallel PP     fitness %.8f | %.4fs/sweep | sweeps: %d ALS + %d "
      "init + %d approx\n",
      r.fitness, r.mean_sweep_seconds, r.num_als_sweeps, r.num_pp_init,
      r.num_pp_approx);

  std::printf(
      "\nAll parallel variants reproduce the sequential fitness: the\n"
      "distribution is exact (deterministic initialization + the same\n"
      "update order), only cost changes with the grid.\n");
  return 0;
}
