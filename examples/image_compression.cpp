// Example: CP compression of image-stack tensors (COIL-like and
// hyperspectral time-lapse), the paper's Fig. 5e/5f workloads.
//
// Order-4 tensors from imaging pipelines compress extremely well at small
// CP rank because poses / frames are smooth deformations of each other.
// This example decomposes both synthetic datasets and reports the
// per-pixel RMS error of the rank-R reconstruction.
//
//   ./image_compression [--rank 20]
#include <cmath>
#include <cstdio>

#include "parpp/data/coil.hpp"
#include "parpp/data/hyperspectral.hpp"
#include "parpp/solver/solver.hpp"
#include "parpp/util/timer.hpp"

using namespace parpp;

namespace {

void compress(const char* label, const tensor::DenseTensor& t, index_t rank,
              solver::Method method = solver::Method::kPp) {
  std::printf("\n%s [%s]: shape", label,
              std::string(solver::to_string(method)).c_str());
  double dense = 1.0, cp = 0.0;
  for (index_t e : t.shape()) {
    std::printf(" %lld", static_cast<long long>(e));
    dense *= static_cast<double>(e);
    cp += static_cast<double>(e) * static_cast<double>(rank);
  }
  std::printf(", rank %lld\n", static_cast<long long>(rank));

  solver::SolverSpec spec;
  spec.method = method;
  spec.rank = rank;
  spec.stopping.max_sweeps = 120;
  spec.stopping.fitness_tol = 1e-6;
  spec.pp.pp_tol = 0.1;
  WallTimer timer;
  const solver::SolveReport r = parpp::solve(t, spec);

  // Per-pixel RMS error of the reconstruction, from the relative residual.
  const double rms_signal = t.frobenius_norm() / std::sqrt(dense);
  std::printf(
      "  fitness %.5f | per-pixel RMS error %.3e (signal RMS %.3e)\n"
      "  %d sweeps (%d ALS, %d PP-init, %d PP-approx) in %.2fs | "
      "compression %.0fx\n",
      r.fitness, r.residual * rms_signal, rms_signal, r.sweeps,
      r.num_als_sweeps, r.num_pp_init, r.num_pp_approx, timer.seconds(),
      dense / cp);
}

}  // namespace

int main(int argc, char** argv) {
  index_t rank = 20;
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::string(argv[i]) == "--rank") rank = std::atol(argv[i + 1]);
  }

  data::CoilOptions coil;
  coil.height = 32;
  coil.width = 32;
  coil.objects = 6;
  coil.poses = 20;
  compress("COIL-like object/pose stack", data::make_coil_tensor(coil), rank);

  data::HyperspectralOptions hs;
  hs.height = 48;
  hs.width = 64;
  const auto timelapse = data::make_hyperspectral_tensor(hs);
  compress("Time-lapse hyperspectral scene", timelapse, 2 * rank + 10);
  // Radiance data is nonnegative — the PP-accelerated HALS method keeps the
  // factors physically interpretable at the same MTTKRP cost structure.
  compress("Time-lapse hyperspectral scene", timelapse, 2 * rank + 10,
           solver::Method::kPpNncp);

  std::printf(
      "\nBoth tensors mirror the paper's imaging workloads: highly\n"
      "compressible, with PP taking over most sweeps once ALS settles.\n");
  return 0;
}
