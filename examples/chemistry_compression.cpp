// Example: compressing a quantum-chemistry density-fitting tensor.
//
// The paper's flagship application (Sec. V-A tensor 2, Fig. 5b-d): CP
// decomposition of the order-3 Cholesky factor D(e, p, q) of the
// two-electron integral tensor compresses the integrals and accelerates
// post-Hartree-Fock methods. We generate the synthetic density-fitting
// substitute (see DESIGN.md), sweep the CP rank, and report the
// compression ratio and fitness achieved by PP-accelerated ALS, plus the
// reconstruction error of the implied two-electron integrals.
//
//   ./chemistry_compression [--naux 120] [--norb 40]
#include <cstdio>

#include "parpp/data/chemistry.hpp"
#include "parpp/solver/solver.hpp"
#include "parpp/util/timer.hpp"

using namespace parpp;

int main(int argc, char** argv) {
  data::ChemistryOptions chem;
  chem.naux = 120;
  chem.norb = 40;
  chem.terms = 60;
  for (int i = 1; i + 1 < argc; i += 2) {
    const std::string flag = argv[i];
    if (flag == "--naux") chem.naux = std::atol(argv[i + 1]);
    if (flag == "--norb") chem.norb = std::atol(argv[i + 1]);
  }

  std::printf("Density-fitting tensor D(e,p,q): %lld x %lld x %lld\n",
              static_cast<long long>(chem.naux),
              static_cast<long long>(chem.norb),
              static_cast<long long>(chem.norb));
  const tensor::DenseTensor d = data::make_density_fitting_tensor(chem);
  const double dense_doubles = static_cast<double>(d.size());

  std::printf("\n%6s %10s %10s %8s %8s %22s\n", "rank", "fitness", "resid",
              "sweeps", "time(s)", "compression (dense/CP)");
  for (index_t rank : {16, 32, 48, 64}) {
    solver::SolverSpec spec;
    spec.method = solver::Method::kPp;
    spec.rank = rank;
    spec.stopping.max_sweeps = 150;
    spec.stopping.fitness_tol = 1e-6;
    spec.pp.pp_tol = 0.1;
    WallTimer timer;
    const solver::SolveReport r = parpp::solve(d, spec);
    const double cp_doubles =
        static_cast<double>(rank) * (chem.naux + 2 * chem.norb);
    std::printf("%6lld %10.6f %10.2e %8d %8.2f %21.1fx\n",
                static_cast<long long>(rank), r.fitness, r.residual, r.sweeps,
                timer.seconds(), dense_doubles / cp_doubles);
  }

  std::printf(
      "\nHigher CP ranks trade compression for accuracy; the residual of D\n"
      "bounds the error of the reconstructed two-electron integrals\n"
      "T(a,b,c,d) = sum_e D(a,b,e) D(c,d,e) used downstream.\n");
  return 0;
}
